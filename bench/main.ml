(* Benchmark harness.

   Part 1 prints the reproduction itself: the same rows and series the
   paper's evaluation reports (every table and figure), computed over
   the full 36-benchmark suite.

   Part 2 times the regeneration of each artefact with Bechamel: one
   Test.make per paper table/figure (cold caches, a reduced workload
   subset so each sample stays sub-second) plus microbenchmarks of the
   pipeline stages (analysis, allocation, verification, traffic
   accounting, timing simulation).

   Part 3 times the full artefact regeneration serially and on the
   worker pool (--jobs N / -j N; default: one domain per recommended
   core), checks the two outputs are byte-identical, and re-emits
   everything machine-readably: the timings (BENCH_timings.json) plus a
   wall-clock + IPC record per subset benchmark and the
   serial-vs-parallel run_all comparison (BENCH_perf.json), so the
   performance trajectory can be tracked across PRs without scraping
   the text output.

   Part 4 sweeps the same regeneration across jobs in {1,2,4,8} under
   the Obs.Engine profiler and writes the wall-clock curve plus the
   exact overhead breakdown per setting (BENCH_engine.json), so the
   perf trajectory records not just *that* the pool scales badly but
   *where* each setting's wall x domains budget goes. *)

open Bechamel
open Toolkit

(* Worker-domain count for the fan-out comparison (Part 3) and the
   headline reproduction.  Not wired through Bechamel, so a plain argv
   scan suffices. *)
let jobs =
  let rec scan = function
    | ("--jobs" | "-j") :: v :: _ -> (try int_of_string v with Failure _ -> 0)
    | _ :: rest -> scan rest
    | [] -> 0
  in
  match scan (Array.to_list Sys.argv) with
  | n when n >= 1 -> n
  | _ -> Util.Pool.default_jobs ()

(* Where the cross-run history record lands (--history FILE to
   redirect, --no-history to skip — tests run the harness in temp
   trees that have no baselines/). *)
let history_path =
  let rec scan = function
    | "--history" :: v :: _ -> Some v
    | "--no-history" :: _ -> None
    | _ :: rest -> scan rest
    | [] -> Some "baselines/history.jsonl"
  in
  scan (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's evaluation.                          *)

let report_options =
  Experiments.Options.with_jobs
    { (Experiments.Options.default ()) with Experiments.Options.warps = 8 }
    jobs

let print_reproduction () =
  print_endline "==================================================================";
  print_endline " Reproduction: every table and figure of the paper's evaluation";
  print_endline "==================================================================";
  print_newline ();
  Experiments.Report.run_all report_options

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timings.                                           *)

(* A representative cross-suite subset keeps each cold regeneration
   sample fast. *)
let bench_subset =
  [ "VectorAdd"; "MatrixMul"; "Mandelbrot"; "Reduction"; "cp"; "hotspot" ]

let bench_options () =
  Experiments.Options.with_benchmarks
    { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
    bench_subset

let artefact_tests =
  List.map
    (fun (name, artefact) ->
      Test.make ~name
        (Staged.stage (fun () ->
             Experiments.Report.clear_caches ();
             ignore (Experiments.Report.tables_of (bench_options ()) artefact))))
    Experiments.Report.artefact_names

let stage_tests =
  let kernel = lazy (Rfh.benchmark "MatrixMul") in
  let ctx = lazy (Alloc.Context.create (Lazy.force kernel)) in
  let config = Alloc.Config.make () in
  let placement = lazy (Alloc.Allocator.place config (Lazy.force ctx)) in
  [
    Test.make ~name:"analysis:context"
      (Staged.stage (fun () -> ignore (Alloc.Context.create (Lazy.force kernel))));
    Test.make ~name:"compiler:allocate"
      (Staged.stage (fun () -> ignore (Alloc.Allocator.run config (Lazy.force ctx))));
    Test.make ~name:"compiler:verify"
      (Staged.stage (fun () ->
           ignore (Alloc.Verify.check config (Lazy.force ctx) (Lazy.force placement))));
    Test.make ~name:"sim:traffic-sw"
      (Staged.stage (fun () ->
           ignore
             (Sim.Traffic.run ~warps:4 (Lazy.force ctx)
                (Sim.Traffic.Sw { config; placement = Lazy.force placement }))));
    Test.make ~name:"sim:traffic-hw"
      (Staged.stage (fun () ->
           ignore
             (Sim.Traffic.run ~warps:4 (Lazy.force ctx)
                (Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:3)))));
    Test.make ~name:"sim:perf-two-level"
      (Staged.stage (fun () ->
           ignore
             (Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300
                ~scheduler:(Sim.Perf.Two_level 8) ~policy:Sim.Perf.On_dependence
                (Lazy.force ctx))));
    Test.make ~name:"sim:perf-single-level"
      (Staged.stage (fun () ->
           ignore
             (Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300
                ~scheduler:Sim.Perf.Single_level ~policy:Sim.Perf.On_dependence
                (Lazy.force ctx))));
    Test.make ~name:"sim:perf-two-level-banked"
      (Staged.stage (fun () ->
           ignore
             (Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300 ~mrf_banks:4
                ~scheduler:(Sim.Perf.Two_level 8)
                ~policy:Sim.Perf.At_strand_boundaries (Lazy.force ctx))));
  ]

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:6 ~quota:(Time.second 2.0) ~kde:None ~sampling:(`Linear 1)
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"rfh" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let estimate_rows results =
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let print_results results =
  let rows = estimate_rows results in
  let t =
    Util.Table.create ~title:"Bechamel timings (monotonic clock per run)"
      ~columns:[ "Benchmark"; "Time per run" ]
  in
  List.iter
    (fun (name, ols) ->
      let cell =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) ->
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        | Some [] | None -> "n/a"
      in
      Util.Table.add_row t [ name; cell ])
    rows;
  Util.Table.print t

(* ------------------------------------------------------------------ *)
(* Part 3: machine-readable BENCH_*.json results.                      *)

let write_json path json =
  let oc = open_out path in
  Obs.Json.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let timings_json results =
  Obs.Json.Arr
    (List.filter_map
       (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (est :: _) ->
           Some (Obs.Json.Obj [ ("benchmark", Obs.Json.Str name); ("ns_per_run", Obs.Json.Num est) ])
         | Some [] | None -> None)
       (estimate_rows results))

(* Wall time, executed instructions and IPC of one two-level-scheduler
   timing simulation per subset benchmark. *)
let per_benchmark_perf_json () =
  Obs.Json.Arr
    (List.map
       (fun name ->
         let e = Option.get (Workloads.Registry.find name) in
         let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
         let t0 = Obs.Clock.now_ns () in
         let r =
           Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300 ~scheduler:(Sim.Perf.Two_level 8)
             ~policy:Sim.Perf.On_dependence ctx
         in
         let wall_s = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e3 in
         Obs.Json.Obj
           [
             ("benchmark", Obs.Json.Str name);
             ("wall_time_s", Obs.Json.Num wall_s);
             ("instructions", Obs.Json.int r.Sim.Perf.instructions);
             ("ipc", Obs.Json.Num r.Sim.Perf.ipc);
           ])
       bench_subset)

(* Serial vs. parallel regeneration of every artefact, cold caches both
   times, over the bench subset.  The rendered tables must match
   byte-for-byte — the pool's ordering contract — and the two wall
   clocks land in BENCH_perf.json so the speedup is tracked across
   PRs. *)
let timed_run_all ~jobs =
  Experiments.Report.clear_caches ();
  let opts = Experiments.Options.with_jobs (bench_options ()) jobs in
  let t0 = Obs.Clock.now_ns () in
  let rendered =
    List.concat_map
      (fun (_, a) -> List.map Util.Table.render (Experiments.Report.tables_of opts a))
      Experiments.Report.artefact_names
  in
  let wall_s = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e3 in
  (String.concat "\n" rendered, wall_s)

let run_all_comparison () =
  let serial_out, serial_s = timed_run_all ~jobs:1 in
  let parallel_out, parallel_s = timed_run_all ~jobs in
  let parity = String.equal serial_out parallel_out in
  Printf.printf
    "run_all (subset, cold caches): serial %.2fs, %d jobs %.2fs — %.2fx, output %s\n"
    serial_s jobs parallel_s
    (serial_s /. parallel_s)
    (if parity then "byte-identical" else "DIFFERS");
  if not parity then begin
    prerr_endline "bench: parallel run_all output differs from serial";
    exit 1
  end;
  Obs.Json.Obj
    [
      ("jobs", Obs.Json.int jobs);
      ("serial_s", Obs.Json.Num serial_s);
      ("parallel_s", Obs.Json.Num parallel_s);
      ("speedup", Obs.Json.Num (serial_s /. parallel_s));
      ("parity", Obs.Json.Bool parity);
    ]

(* ------------------------------------------------------------------ *)
(* Part 4: the jobs curve with the engine profiler on.                  *)

let engine_curve_jobs = [ 1; 2; 4; 8 ]

(* Engine shares of the widest run's wall x domains budget, plus the
   Part 4 warning as data: run_all losing to serial at jobs=2.  Both
   land in the history record so rfh trend can watch them drift. *)
let engine_history_summary reports =
  let jobs2_slower =
    match reports with
    | (base : Obs.Engine.report) :: rest ->
      List.exists
        (fun (r : Obs.Engine.report) ->
          r.Obs.Engine.jobs = 2 && r.Obs.Engine.wall_ns > 0
          && float_of_int base.Obs.Engine.wall_ns /. float_of_int r.Obs.Engine.wall_ns
             < 1.0)
        rest
    | [] -> false
  in
  let engine =
    match List.rev reports with
    | [] -> None
    | (widest : Obs.Engine.report) :: _ ->
      let agg = Obs.Engine.agg_categories widest in
      let budget =
        List.fold_left (fun acc (_, v) -> acc + v) 0 (Obs.Engine.cat_list agg)
      in
      if budget = 0 then None
      else
        let share ns = float_of_int ns /. float_of_int budget in
        Some
          {
            Obs.History.eng_useful = share agg.Obs.Engine.useful_ns;
            eng_spawn = share agg.Obs.Engine.spawn_ns;
            eng_idle = share agg.Obs.Engine.idle_ns;
          }
  in
  (* GC summary of the same widest window, when a capture ran: share
     of useful, allocation volume, pause tail (the histogram summary
     is in microseconds; history records nanoseconds). *)
  let gc =
    match List.rev reports with
    | (widest : Obs.Engine.report) :: _ when widest.Obs.Engine.gc <> None ->
      let mem =
        match widest.Obs.Engine.gc with
        | Some g -> Obs.Engine.gc_mem_totals g
        | None -> assert false
      in
      let p50, p99 =
        match Obs.Engine.gc_pause_summary widest with
        | Some h -> (h.Obs.Metrics.p50 *. 1e3, h.Obs.Metrics.p99 *. 1e3)
        | None -> (0.0, 0.0)
      in
      Some
        {
          Obs.History.hg_gc_share = Obs.Engine.gc_share widest;
          hg_minor_words = mem.Obs.Engine.mt_minor_words;
          hg_pause_p50_ns = p50;
          hg_pause_p99_ns = p99;
        }
    | _ -> None
  in
  (engine, gc, jobs2_slower)

let engine_curve () =
  let runs =
    List.map
      (fun j ->
        let out, report =
          Obs.Engine.profile ~label:"run_all" ~jobs:j (fun () ->
              fst (timed_run_all ~jobs:j))
        in
        (j, out, report))
      engine_curve_jobs
  in
  let reports = List.map (fun (_, _, r) -> r) runs in
  (* Same contract as Part 3: the engine recorder may not change a
     byte of the rendered tables, at any jobs setting. *)
  (match runs with
   | (_, out0, _) :: rest ->
     List.iter
       (fun (j, out, _) ->
         if not (String.equal out out0) then begin
           Printf.eprintf "bench: engine-profiled run_all at jobs=%d differs from jobs=1\n" j;
           exit 1
         end)
       rest
   | [] -> ());
  List.iter
    (fun (r : Obs.Engine.report) ->
      match Obs.Engine.check r with
      | [] -> ()
      | violations ->
        Printf.eprintf "bench: engine accounting invariants FAILED at jobs=%d:\n"
          r.Obs.Engine.jobs;
        List.iter (fun v -> prerr_endline ("  " ^ v)) violations;
        exit 1)
    reports;
  Util.Table.print (Obs.Engine.speedup_table reports);
  Util.Table.print (Obs.Engine.breakdown_table reports);
  (* A pool that loses to serial at jobs=2 means per-task cost has
     shrunk below the fan-out overhead (or workers are contending);
     surface it rather than leaving it buried in the JSON. *)
  (match reports with
   | (base : Obs.Engine.report) :: rest ->
     List.iter
       (fun (r : Obs.Engine.report) ->
         if r.Obs.Engine.jobs = 2 && r.Obs.Engine.wall_ns > 0 then begin
           let speedup =
             float_of_int base.Obs.Engine.wall_ns
             /. float_of_int r.Obs.Engine.wall_ns
           in
           if speedup < 1.0 then
             Printf.printf
               "WARNING: run_all at jobs=2 is SLOWER than serial (%.2fx); \
                pool overhead exceeds the per-task work\n"
               speedup
         end)
       rest
   | [] -> ());
  let base_wall = match reports with r :: _ -> r.Obs.Engine.wall_ns | [] -> 0 in
  ( Obs.Json.Arr
      (List.map
         (fun (r : Obs.Engine.report) ->
           let agg = Obs.Engine.agg_categories r in
           let budget =
             List.fold_left
               (fun acc (reg : Obs.Engine.region) ->
                 acc + (reg.Obs.Engine.wall_ns * reg.Obs.Engine.domains))
               0 r.Obs.Engine.regions
           in
           Obs.Json.Obj
             [
               ("jobs", Obs.Json.int r.Obs.Engine.jobs);
               ("wall_s", Obs.Json.Num (float_of_int r.Obs.Engine.wall_ns /. 1e9));
               ( "speedup",
                 Obs.Json.Num
                   (if r.Obs.Engine.wall_ns = 0 then 1.0
                    else float_of_int base_wall /. float_of_int r.Obs.Engine.wall_ns) );
               ("budget_ns", Obs.Json.int budget);
               ( "breakdown_ns",
                 Obs.Json.Obj
                   (List.map
                      (fun (name, v) -> (name, Obs.Json.int v))
                      (Obs.Engine.cat_list agg)) );
               ("gc_ns", Obs.Json.int agg.Obs.Engine.gc_ns);
               ("gc_share", Obs.Json.Num (Obs.Engine.gc_share r));
               ("report", Obs.Engine.to_json r);
             ])
         reports),
    reports )

let () =
  let wall0 = Obs.Clock.now_ns () in
  print_reproduction ();
  print_endline "==================================================================";
  print_endline " Bechamel: cold-regeneration cost per artefact + pipeline stages";
  Printf.printf " (artefact timings use the %d-benchmark subset: %s)\n"
    (List.length bench_subset)
    (String.concat ", " bench_subset);
  print_endline "==================================================================";
  print_newline ();
  let results = benchmark (artefact_tests @ stage_tests) in
  print_results results;
  let run_all = run_all_comparison () in
  write_json "BENCH_timings.json" (timings_json results);
  write_json "BENCH_perf.json"
    (Obs.Json.Obj
       [ ("benchmarks", per_benchmark_perf_json ()); ("run_all", run_all) ]);
  print_endline "==================================================================";
  print_endline " Engine profile: run_all wall-clock curve across jobs settings";
  print_endline "==================================================================";
  print_newline ();
  let engine_json, engine_reports = engine_curve () in
  write_json "BENCH_engine.json" engine_json;
  (* Full run manifest + HTML report over the headline options, so every
     bench run leaves the same machine-readable record the regression
     gate consumes. *)
  let manifest = Experiments.Run_manifest.collect report_options in
  write_json "BENCH_manifest.json" (Obs.Manifest.to_json manifest);
  Obs.Html_report.write_file ~path:"BENCH_report.html" manifest;
  Printf.printf "wrote BENCH_report.html\n";
  (* One history record merging everything this run measured; the
     append is timed so the overhead claim in docs/observability.md
     stays checkable on every run. *)
  let engine, gc, jobs2_slower = engine_history_summary engine_reports in
  let wall_s = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) wall0) /. 1e3 in
  let record =
    Obs.History.of_manifest ?engine ?gc ~jobs2_slower ~source:"bench" ~wall_s
      manifest
  in
  write_json "BENCH_history.json" (Obs.History.to_json record);
  match history_path with
  | None -> ()
  | Some path ->
    let t0 = Obs.Clock.now_ns () in
    Obs.History.append ~path record;
    let append_ms = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0) in
    Printf.printf "appended history record -> %s (%.3f ms, %.5f%% of %.1f s wall)\n"
      path append_ms
      (100.0 *. append_ms /. 1e3 /. wall_s)
      wall_s
