(* Performance gate (make perfgate; wired into make ci).

   Times the sim:perf-two-level microbenchmark — the hot timing loop
   the allocation-free core targets — and measures the steady-state
   minor-heap cost of one run.  Both numbers are checked against the
   committed threshold file baselines/perfgate.json:

   - ns_per_run may regress at most 2x over the committed threshold:
     generous enough for machine-to-machine variance, tight enough to
     catch the cycle loop re-growing a per-cycle allocation or a
     quadratic scan;
   - minor words per run must stay under the committed cap.  The
     steady-state loop allocates nothing, so a run costs only the
     result record — a constant independent of cycle count;
   - promoted and major words per run (Gc.quick_stat deltas averaged
     over the timed runs) must stay under their committed caps: a
     steady-state allocation regression whose garbage survives minor
     collection would pass the minor-words gate while growing the
     major heap every run.

   The probe is timed --runs times (default 5); the gate compares the
   median, and the p90 rides along as a tail-latency indicator.  The
   measured numbers land in _build/perfgate.json for CI to upload, so
   the trajectory is recorded even when the gate passes, and one
   history record is appended to baselines/history.jsonl (--history to
   redirect, --no-history to skip) so rfh trend sees the cross-run
   series.  If the threshold file does not exist yet it is recorded
   from the current measurement (the regress-gate convention). *)

let baseline_path = "baselines/perfgate.json"
let artifact_path = "_build/perfgate.json"
let default_timed_runs = 5

let arg_value name =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let timed_runs =
  match Option.map int_of_string_opt (arg_value "--runs") with
  | Some (Some n) when n > 0 -> n
  | Some _ -> prerr_endline "perfgate: --runs wants a positive integer"; exit 2
  | None -> default_timed_runs

let history_path =
  if Array.exists (( = ) "--no-history") Sys.argv then None
  else Some (Option.value ~default:"baselines/history.jsonl" (arg_value "--history"))

(* Same workload and configuration as the sim:perf-two-level stage
   test in bench/main.ml, so the two numbers are comparable. *)
let bench_ctx () = Alloc.Context.create (Rfh.benchmark "MatrixMul")

let run_once ctx =
  Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300
    ~scheduler:(Sim.Perf.Two_level 8) ~policy:Sim.Perf.On_dependence ctx

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let p90 a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  a.(max 0 (int_of_float (ceil (0.9 *. float_of_int n)) - 1))

(* Caps recorded into a fresh baseline (and patched into a pre-GC-gate
   one): the steady-state loop promotes nothing, so anything beyond
   slack for an unluckily-timed minor collection is a regression. *)
let default_promoted_cap = 8192.0
let default_major_cap = 16384.0

let baseline_json ~ns ~minor_cap ~promoted_cap ~major_cap =
  Obs.Json.Obj
    [
      ("ns_per_run", Obs.Json.Num ns);
      ("max_minor_words_per_run", Obs.Json.Num minor_cap);
      ("max_promoted_words_per_run", Obs.Json.Num promoted_cap);
      ("max_major_words_per_run", Obs.Json.Num major_cap);
    ]

let read_baseline () =
  if not (Sys.file_exists baseline_path) then None
  else
    let s = In_channel.with_open_text baseline_path In_channel.input_all in
    match Obs.Json.parse s with
    | Error e ->
      Printf.eprintf "perfgate: cannot parse %s: %s\n" baseline_path e;
      exit 1
    | Ok j -> (
      let num k = Option.bind (Obs.Json.member k j) Obs.Json.to_num in
      match (num "ns_per_run", num "max_minor_words_per_run") with
      | Some t, Some cap ->
        (* Baselines written before the promotion gate lack the new
           caps; adopt the defaults and upgrade the file in place so
           the next run reads a complete threshold set. *)
        let promoted_cap, major_cap, upgraded =
          match (num "max_promoted_words_per_run", num "max_major_words_per_run") with
          | Some p, Some m -> (p, m, false)
          | p, m ->
            ( Option.value ~default:default_promoted_cap p,
              Option.value ~default:default_major_cap m,
              true )
        in
        Some (t, cap, promoted_cap, major_cap, upgraded)
      | _ ->
        Printf.eprintf "perfgate: malformed %s\n" baseline_path;
        exit 1)

let write_json path json =
  let oc = open_out path in
  Obs.Json.to_channel oc json;
  output_char oc '\n';
  close_out oc

let () =
  let wall0 = Obs.Clock.now_ns () in
  let ctx = bench_ctx () in
  (* Two warm-up runs fill the domain-local scratch and the predecode
     cache, so both the allocation probe and the timed runs see steady
     state; scratch reuse must not change the result. *)
  let r0 = run_once ctx in
  ignore (run_once ctx);
  let w0 = Gc.minor_words () in
  let r1 = run_once ctx in
  let words_per_run = Gc.minor_words () -. w0 in
  if r1 <> r0 then begin
    prerr_endline "perfgate: scratch reuse changed the simulation result";
    exit 1
  end;
  (* Promoted/major probe over the whole timed loop: a single run's
     delta is lumpy (promotion only happens when a minor collection
     lands mid-run), so the average over the timed runs is gated. *)
  let qs0 = Gc.quick_stat () in
  let samples =
    Array.init timed_runs (fun _ ->
        let t0 = Obs.Clock.now_ns () in
        ignore (run_once ctx);
        Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0))
  in
  let qs1 = Gc.quick_stat () in
  let per_run d = d /. float_of_int timed_runs in
  let promoted_per_run = per_run (qs1.Gc.promoted_words -. qs0.Gc.promoted_words) in
  let major_per_run = per_run (qs1.Gc.major_words -. qs0.Gc.major_words) in
  let ns_per_run = median samples in
  let p90_ns = p90 samples in
  let baseline =
    match read_baseline () with
    | Some (t, cap, pcap, mcap, upgraded) ->
      if upgraded then begin
        write_json baseline_path
          (baseline_json ~ns:t ~minor_cap:cap ~promoted_cap:pcap ~major_cap:mcap);
        Printf.printf "perfgate: added promoted/major caps to %s\n" baseline_path
      end;
      (t, cap, pcap, mcap)
    | None ->
      (* First run on this tree: record the current measurement as the
         threshold, with the fixed allocation caps the zero-alloc test
         also enforces. *)
      let cap = 8192.0 in
      write_json baseline_path
        (baseline_json ~ns:ns_per_run ~minor_cap:cap ~promoted_cap:default_promoted_cap
           ~major_cap:default_major_cap);
      Printf.printf "perfgate: no threshold recorded yet; wrote %s\n"
        baseline_path;
      (ns_per_run, cap, default_promoted_cap, default_major_cap)
  in
  let threshold_ns, words_cap, promoted_cap, major_cap = baseline in
  let allowed_ns = 2.0 *. threshold_ns in
  let time_ok = ns_per_run <= allowed_ns in
  let alloc_ok = words_per_run <= words_cap in
  let promoted_ok = promoted_per_run <= promoted_cap in
  let major_ok = major_per_run <= major_cap in
  write_json artifact_path
    (Obs.Json.Obj
       [
         ("benchmark", Obs.Json.Str "sim:perf-two-level");
         ("ns_per_run", Obs.Json.Num ns_per_run);
         ("p90_ns_per_run", Obs.Json.Num p90_ns);
         ("timed_runs", Obs.Json.int timed_runs);
         ("threshold_ns_per_run", Obs.Json.Num threshold_ns);
         ("allowed_ns_per_run", Obs.Json.Num allowed_ns);
         ("minor_words_per_run", Obs.Json.Num words_per_run);
         ("max_minor_words_per_run", Obs.Json.Num words_cap);
         ("promoted_words_per_run", Obs.Json.Num promoted_per_run);
         ("max_promoted_words_per_run", Obs.Json.Num promoted_cap);
         ("major_words_per_run", Obs.Json.Num major_per_run);
         ("max_major_words_per_run", Obs.Json.Num major_cap);
         ("cycles", Obs.Json.int r1.Sim.Perf.cycles);
         ("instructions", Obs.Json.int r1.Sim.Perf.instructions);
         ("pass", Obs.Json.Bool (time_ok && alloc_ok && promoted_ok && major_ok));
       ]);
  Printf.printf
    "perfgate: sim:perf-two-level %.2f ms/run median over %d, p90 %.2f ms \
     (threshold %.2f ms, allowed %.2f ms), %.0f minor words/run (cap %.0f), \
     %.0f promoted (cap %.0f), %.0f major (cap %.0f); wrote %s\n"
    (ns_per_run /. 1e6) timed_runs (p90_ns /. 1e6) (threshold_ns /. 1e6)
    (allowed_ns /. 1e6) words_per_run words_cap promoted_per_run promoted_cap
    major_per_run major_cap artifact_path;
  (match history_path with
  | None -> ()
  | Some path ->
    let record =
      {
        Obs.History.timestamp = Obs.Host.utc_now ();
        source = "perfgate";
        host = Obs.Host.fingerprint ();
        jobs = 1;
        wall_s =
          Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) wall0) /. 1000.0;
        benches = [];
        perfgate =
          Some
            {
              Obs.History.pg_ns_per_run = ns_per_run;
              pg_p90_ns = p90_ns;
              pg_minor_words = words_per_run;
              pg_runs = timed_runs;
              pg_promoted_words = Some promoted_per_run;
              pg_major_words = Some major_per_run;
            };
        engine = None;
        gc = None;
        jobs2_slower = None;
      }
    in
    Obs.History.append ~path record;
    Printf.printf "perfgate: history record -> %s\n" path);
  if not time_ok then
    Printf.eprintf
      "perfgate: FAIL — ns_per_run regressed more than 2x over %s\n"
      baseline_path;
  if not alloc_ok then
    Printf.eprintf
      "perfgate: FAIL — steady-state run allocates %.0f minor words (cap \
       %.0f); the cycle loop is allocating again\n"
      words_per_run words_cap;
  if not promoted_ok then
    Printf.eprintf
      "perfgate: FAIL — steady-state run promotes %.0f words (cap %.0f); \
       per-run garbage is surviving minor collection\n"
      promoted_per_run promoted_cap;
  if not major_ok then
    Printf.eprintf
      "perfgate: FAIL — steady-state run grows the major heap by %.0f words \
       (cap %.0f)\n"
      major_per_run major_cap;
  if not (time_ok && alloc_ok && promoted_ok && major_ok) then exit 1
