(* Performance gate (make perfgate; wired into make ci).

   Times the sim:perf-two-level microbenchmark — the hot timing loop
   the allocation-free core targets — and measures the steady-state
   minor-heap cost of one run.  Both numbers are checked against the
   committed threshold file baselines/perfgate.json:

   - ns_per_run may regress at most 2x over the committed threshold:
     generous enough for machine-to-machine variance, tight enough to
     catch the cycle loop re-growing a per-cycle allocation or a
     quadratic scan;
   - minor words per run must stay under the committed cap.  The
     steady-state loop allocates nothing, so a run costs only the
     result record — a constant independent of cycle count.

   The probe is timed --runs times (default 5); the gate compares the
   median, and the p90 rides along as a tail-latency indicator.  The
   measured numbers land in _build/perfgate.json for CI to upload, so
   the trajectory is recorded even when the gate passes, and one
   history record is appended to baselines/history.jsonl (--history to
   redirect, --no-history to skip) so rfh trend sees the cross-run
   series.  If the threshold file does not exist yet it is recorded
   from the current measurement (the regress-gate convention). *)

let baseline_path = "baselines/perfgate.json"
let artifact_path = "_build/perfgate.json"
let default_timed_runs = 5

let arg_value name =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let timed_runs =
  match Option.map int_of_string_opt (arg_value "--runs") with
  | Some (Some n) when n > 0 -> n
  | Some _ -> prerr_endline "perfgate: --runs wants a positive integer"; exit 2
  | None -> default_timed_runs

let history_path =
  if Array.exists (( = ) "--no-history") Sys.argv then None
  else Some (Option.value ~default:"baselines/history.jsonl" (arg_value "--history"))

(* Same workload and configuration as the sim:perf-two-level stage
   test in bench/main.ml, so the two numbers are comparable. *)
let bench_ctx () = Alloc.Context.create (Rfh.benchmark "MatrixMul")

let run_once ctx =
  Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300
    ~scheduler:(Sim.Perf.Two_level 8) ~policy:Sim.Perf.On_dependence ctx

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let p90 a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  a.(max 0 (int_of_float (ceil (0.9 *. float_of_int n)) - 1))

let read_baseline () =
  if not (Sys.file_exists baseline_path) then None
  else
    let s = In_channel.with_open_text baseline_path In_channel.input_all in
    match Obs.Json.parse s with
    | Error e ->
      Printf.eprintf "perfgate: cannot parse %s: %s\n" baseline_path e;
      exit 1
    | Ok j -> (
      let num k = Option.bind (Obs.Json.member k j) Obs.Json.to_num in
      match (num "ns_per_run", num "max_minor_words_per_run") with
      | Some t, Some cap -> Some (t, cap)
      | _ ->
        Printf.eprintf "perfgate: malformed %s\n" baseline_path;
        exit 1)

let write_json path json =
  let oc = open_out path in
  Obs.Json.to_channel oc json;
  output_char oc '\n';
  close_out oc

let () =
  let wall0 = Obs.Clock.now_ns () in
  let ctx = bench_ctx () in
  (* Two warm-up runs fill the domain-local scratch and the predecode
     cache, so both the allocation probe and the timed runs see steady
     state; scratch reuse must not change the result. *)
  let r0 = run_once ctx in
  ignore (run_once ctx);
  let w0 = Gc.minor_words () in
  let r1 = run_once ctx in
  let words_per_run = Gc.minor_words () -. w0 in
  if r1 <> r0 then begin
    prerr_endline "perfgate: scratch reuse changed the simulation result";
    exit 1
  end;
  let samples =
    Array.init timed_runs (fun _ ->
        let t0 = Obs.Clock.now_ns () in
        ignore (run_once ctx);
        Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0))
  in
  let ns_per_run = median samples in
  let p90_ns = p90 samples in
  let baseline =
    match read_baseline () with
    | Some b -> b
    | None ->
      (* First run on this tree: record the current measurement as the
         threshold, with the fixed allocation cap the zero-alloc test
         also enforces. *)
      let cap = 8192.0 in
      write_json baseline_path
        (Obs.Json.Obj
           [
             ("ns_per_run", Obs.Json.Num ns_per_run);
             ("max_minor_words_per_run", Obs.Json.Num cap);
           ]);
      Printf.printf "perfgate: no threshold recorded yet; wrote %s\n"
        baseline_path;
      (ns_per_run, cap)
  in
  let threshold_ns, words_cap = baseline in
  let allowed_ns = 2.0 *. threshold_ns in
  let time_ok = ns_per_run <= allowed_ns in
  let alloc_ok = words_per_run <= words_cap in
  write_json artifact_path
    (Obs.Json.Obj
       [
         ("benchmark", Obs.Json.Str "sim:perf-two-level");
         ("ns_per_run", Obs.Json.Num ns_per_run);
         ("p90_ns_per_run", Obs.Json.Num p90_ns);
         ("timed_runs", Obs.Json.int timed_runs);
         ("threshold_ns_per_run", Obs.Json.Num threshold_ns);
         ("allowed_ns_per_run", Obs.Json.Num allowed_ns);
         ("minor_words_per_run", Obs.Json.Num words_per_run);
         ("max_minor_words_per_run", Obs.Json.Num words_cap);
         ("cycles", Obs.Json.int r1.Sim.Perf.cycles);
         ("instructions", Obs.Json.int r1.Sim.Perf.instructions);
         ("pass", Obs.Json.Bool (time_ok && alloc_ok));
       ]);
  Printf.printf
    "perfgate: sim:perf-two-level %.2f ms/run median over %d, p90 %.2f ms \
     (threshold %.2f ms, allowed %.2f ms), %.0f minor words/run (cap %.0f); \
     wrote %s\n"
    (ns_per_run /. 1e6) timed_runs (p90_ns /. 1e6) (threshold_ns /. 1e6)
    (allowed_ns /. 1e6) words_per_run words_cap artifact_path;
  (match history_path with
  | None -> ()
  | Some path ->
    let record =
      {
        Obs.History.timestamp = Obs.Host.utc_now ();
        source = "perfgate";
        host = Obs.Host.fingerprint ();
        jobs = 1;
        wall_s =
          Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) wall0) /. 1000.0;
        benches = [];
        perfgate =
          Some
            {
              Obs.History.pg_ns_per_run = ns_per_run;
              pg_p90_ns = p90_ns;
              pg_minor_words = words_per_run;
              pg_runs = timed_runs;
            };
        engine = None;
        jobs2_slower = None;
      }
    in
    Obs.History.append ~path record;
    Printf.printf "perfgate: history record -> %s\n" path);
  if not time_ok then
    Printf.eprintf
      "perfgate: FAIL — ns_per_run regressed more than 2x over %s\n"
      baseline_path;
  if not alloc_ok then
    Printf.eprintf
      "perfgate: FAIL — steady-state run allocates %.0f minor words (cap \
       %.0f); the cycle loop is allocating again\n"
      words_per_run words_cap;
  if not (time_ok && alloc_ok) then exit 1
