(* Unit tests for CFG, dominance, liveness, reaching definitions and
   def-use chains, on hand-crafted kernels with known answers. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

(* Diamond: BB0 -> {BB1, BB2} -> BB3. *)
let diamond () =
  let b = B.create "diamond" in
  let p = B.op0 b Op.Mov () in
  let else_l = B.new_label b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:else_l (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  ignore (B.op0 b Op.Mov ());
  B.jump b join;
  B.start_block b else_l;
  ignore (B.op0 b Op.Mov ());
  B.start_block b join;
  B.ret b;
  B.finalize b

(* Loop: BB0 -> BB1 (head) -> BB1 | BB2. *)
let loop_kernel () =
  let b = B.create "loop" in
  let x = B.op0 b Op.Mov () in
  let head = B.here b in
  let y = B.op1 b Op.Mov x in
  let p = B.op1 b Op.Setp y in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop 3);
  let (_ : B.label) = B.here b in
  B.ret b;
  B.finalize b

let test_cfg_diamond () =
  let k = diamond () in
  let cfg = Analysis.Cfg.of_kernel k in
  check Alcotest.(list int) "bb0 succs" [ 2; 1 ] cfg.Analysis.Cfg.succs.(0);
  check Alcotest.(list int) "bb1 succs" [ 3 ] cfg.Analysis.Cfg.succs.(1);
  check Alcotest.(list int) "bb2 succs" [ 3 ] cfg.Analysis.Cfg.succs.(2);
  check Alcotest.(list int) "bb3 preds sorted" [ 1; 2 ]
    (List.sort compare cfg.Analysis.Cfg.preds.(3));
  check
    Alcotest.(list (pair int int))
    "no backward edges" []
    (Analysis.Cfg.backward_edges cfg)

let test_cfg_loop_backedge () =
  let k = loop_kernel () in
  let cfg = Analysis.Cfg.of_kernel k in
  check Alcotest.(list (pair int int)) "backedge" [ (1, 1) ] (Analysis.Cfg.backward_edges cfg);
  let targets = Analysis.Cfg.backward_targets cfg in
  check Alcotest.bool "bb1 is backward target" true targets.(1);
  check Alcotest.bool "bb0 is not" false targets.(0)

let test_cfg_reachable_rpo () =
  let k = diamond () in
  let cfg = Analysis.Cfg.of_kernel k in
  let reach = Analysis.Cfg.reachable cfg in
  check Alcotest.bool "all reachable" true (Array.for_all Fun.id reach);
  let rpo = Analysis.Cfg.reverse_postorder cfg in
  check Alcotest.int "rpo covers all" 4 (Array.length rpo);
  check Alcotest.int "entry first" 0 rpo.(0);
  let idx = Analysis.Cfg.rpo_index cfg in
  check Alcotest.int "entry index" 0 idx.(0);
  check Alcotest.int "join last" 3 idx.(3)

let test_dominance_diamond () =
  let k = diamond () in
  let cfg = Analysis.Cfg.of_kernel k in
  let dom = Analysis.Dominance.compute cfg in
  check (Alcotest.option Alcotest.int) "idom bb1" (Some 0) (Analysis.Dominance.idom dom 1);
  check (Alcotest.option Alcotest.int) "idom bb2" (Some 0) (Analysis.Dominance.idom dom 2);
  check (Alcotest.option Alcotest.int) "idom bb3" (Some 0) (Analysis.Dominance.idom dom 3);
  check (Alcotest.option Alcotest.int) "entry has none" None (Analysis.Dominance.idom dom 0);
  check Alcotest.bool "0 dom 3" true (Analysis.Dominance.dominates dom 0 3);
  check Alcotest.bool "1 not dom 3" false (Analysis.Dominance.dominates dom 1 3);
  check Alcotest.bool "reflexive" true (Analysis.Dominance.dominates dom 2 2)

let test_dominance_loop () =
  let k = loop_kernel () in
  let cfg = Analysis.Cfg.of_kernel k in
  let dom = Analysis.Dominance.compute cfg in
  check Alcotest.bool "head dominates exit" true (Analysis.Dominance.dominates dom 1 2);
  check Alcotest.bool "entry dominates head" true (Analysis.Dominance.dominates dom 0 1)

let test_instr_dominates () =
  let k = diamond () in
  let cfg = Analysis.Cfg.of_kernel k in
  let dom = Analysis.Dominance.compute cfg in
  (* instr 0 (mov) and instr 1 (bra) are in block 0; instr 2 in bb1. *)
  check Alcotest.bool "same block order" true (Analysis.Dominance.instr_dominates k dom 0 1);
  check Alcotest.bool "same block reverse" false (Analysis.Dominance.instr_dominates k dom 1 0);
  check Alcotest.bool "bb0 dominates bb1 instr" true (Analysis.Dominance.instr_dominates k dom 0 2)

let test_liveness_straight_line () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op1 b Op.Mov x in
  let z = B.op2 b Op.Iadd x y in
  B.store b Op.St_global ~addr:z ~value:z;
  let k = B.finalize b in
  let cfg = Analysis.Cfg.of_kernel k in
  let live = Analysis.Liveness.compute k cfg in
  (* After the store (instr 3), nothing is live. *)
  check Alcotest.bool "z dead at end" false
    (Analysis.Liveness.live_after_instr live ~instr_id:3 z);
  (* After instr 1 (y's def), both x and y are live (z's add reads both). *)
  check Alcotest.bool "x live after 1" true (Analysis.Liveness.live_after_instr live ~instr_id:1 x);
  check Alcotest.bool "y live after 1" true (Analysis.Liveness.live_after_instr live ~instr_id:1 y);
  (* After instr 2, x and y are dead, z live. *)
  check Alcotest.bool "x dead after 2" false (Analysis.Liveness.live_after_instr live ~instr_id:2 x);
  check Alcotest.bool "z live after 2" true (Analysis.Liveness.live_after_instr live ~instr_id:2 z)

let test_liveness_loop_carried () =
  let b = B.create "t" in
  let acc = B.op0 b Op.Mov () in
  let head = B.here b in
  B.op2_into b Op.Iadd ~dst:acc acc acc;
  let p = B.op1 b Op.Setp acc in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop 2);
  let (_ : B.label) = B.here b in
  B.store b Op.St_global ~addr:acc ~value:acc;
  let k = B.finalize b in
  let cfg = Analysis.Cfg.of_kernel k in
  let live = Analysis.Liveness.compute k cfg in
  (* acc is live around the loop: live-in of the loop head includes it. *)
  check Alcotest.bool "acc live into head" true
    (Ir.Reg.Set.mem acc (Analysis.Liveness.live_in live 1));
  check Alcotest.bool "acc live out of head" true
    (Ir.Reg.Set.mem acc (Analysis.Liveness.live_out live 1));
  (* The zero-materialisation accessors expose the same facts. *)
  check Alcotest.bool "bits accessor agrees (in)" true
    (Util.Bitset.mem (Analysis.Liveness.live_in_bits live 1) acc);
  check Alcotest.bool "bits accessor agrees (out)" true
    (Util.Bitset.mem (Analysis.Liveness.live_out_bits live 1) acc);
  check Alcotest.(list int) "set and bits enumerate identically"
    (Ir.Reg.Set.elements (Analysis.Liveness.live_in live 1))
    (Util.Bitset.elements (Analysis.Liveness.live_in_bits live 1))

let test_reaching_multi_def () =
  (* Hammock writing r on both sides; the join read is reached by both. *)
  let b = B.create "t" in
  let p = B.op0 b Op.Mov () in
  let r = B.op0 b Op.Mov () in
  let else_l = B.new_label b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:else_l (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  B.op1_into b Op.Mov ~dst:r p;
  B.jump b join;
  B.start_block b else_l;
  B.op1_into b Op.Mov ~dst:r r;
  B.start_block b join;
  B.store b Op.St_global ~addr:r ~value:r;
  let k = B.finalize b in
  let cfg = Analysis.Cfg.of_kernel k in
  let reach = Analysis.Reaching.compute k cfg in
  (* The store is the last instruction. *)
  let store_id = Ir.Kernel.instr_count k - 1 in
  let defs = Analysis.Reaching.reaching_before reach ~instr_id:store_id r in
  check Alcotest.int "two reaching defs" 2 (List.length defs);
  (* Inside the then-branch, only the local def reaches its own block end. *)
  check Alcotest.bool "then def reaches bb1 end" true
    (Analysis.Reaching.reaches_block_end reach ~block:1 ~def:(List.nth defs 0))

let test_reaching_input () =
  let b = B.create "t" in
  let input = B.fresh b in
  let x = B.op1 b Op.Mov input in
  B.store b Op.St_global ~addr:x ~value:x;
  let k = B.finalize b in
  let cfg = Analysis.Cfg.of_kernel k in
  let reach = Analysis.Reaching.compute k cfg in
  check Alcotest.(list int) "input has no defs" []
    (Analysis.Reaching.reaching_before reach ~instr_id:0 input)

let test_duchain_instances () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op1 b Op.Mov x in
  let z = B.op2 b Op.Iadd x y in
  B.store b Op.St_global ~addr:z ~value:x;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let du = ctx.Alloc.Context.duchain in
  let x_inst = Option.get (Analysis.Duchain.instance_of_def du 0) in
  check Alcotest.int "x read 3 times" 3 (List.length x_inst.Analysis.Duchain.reads);
  let z_inst = Option.get (Analysis.Duchain.instance_of_def du 2) in
  check Alcotest.int "z read once" 1 (List.length z_inst.Analysis.Duchain.reads);
  check Alcotest.int "z read at store slot 0" 0
    (List.hd z_inst.Analysis.Duchain.reads).Analysis.Duchain.slot;
  check Alcotest.bool "x not merged" false (Analysis.Duchain.reads_of_instance_multi du x_inst)

let test_duchain_merged_group () =
  (* Both hammock sides write r; the join read merges the defs. *)
  let b = B.create "t" in
  let p = B.op0 b Op.Mov () in
  let r = B.op0 b Op.Mov () in
  let else_l = B.new_label b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:else_l (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  B.op1_into b Op.Mov ~dst:r p;
  B.jump b join;
  B.start_block b else_l;
  B.op1_into b Op.Mov ~dst:r p;
  B.start_block b join;
  B.store b Op.St_global ~addr:r ~value:p;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let du = ctx.Alloc.Context.duchain in
  (* Find the two defs of r (the op1_into instructions). *)
  let r_defs =
    List.filter (fun (i : Analysis.Duchain.instance) -> i.Analysis.Duchain.reg = r)
      (Analysis.Duchain.instances du)
  in
  let group_sizes =
    List.map
      (fun (i : Analysis.Duchain.instance) ->
        List.length (Analysis.Duchain.group_members du i.Analysis.Duchain.group))
      r_defs
  in
  (* The initial mov of r is killed on both paths; the two hammock defs
     must share one group of size >= 2. *)
  check Alcotest.bool "merged group exists" true (List.exists (fun n -> n >= 2) group_sizes)

let test_duchain_inputs () =
  let b = B.create "t" in
  let input = B.fresh b in
  ignore (B.op2 b Op.Iadd input input);
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let inputs = Analysis.Duchain.input_reads ctx.Alloc.Context.duchain in
  check Alcotest.int "one input register" 1 (List.length inputs);
  let r, reads = List.hd inputs in
  check Alcotest.int "it is the input" input r;
  check Alcotest.int "read twice" 2 (List.length reads)

let test_pressure () =
  (* x and y live together across the add; peak = 2. *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op0 b Op.Mov () in
  let z = B.op2 b Op.Iadd x y in
  B.store b Op.St_global ~addr:z ~value:z;
  let k = B.finalize b in
  let cfg = Analysis.Cfg.of_kernel k in
  let live = Analysis.Liveness.compute k cfg in
  let p = Analysis.Pressure.compute k cfg live in
  check Alcotest.int "3 registers" 3 p.Analysis.Pressure.registers_used;
  check Alcotest.int "peak live 2" 2 p.Analysis.Pressure.max_live

let test_resident_warps () =
  (* Table 2's machine: 32 regs/thread -> 32 warps in 128 KB. *)
  check Alcotest.int "32 regs" 32 (Analysis.Pressure.resident_warps 32);
  check Alcotest.int "64 regs halves warps" 16 (Analysis.Pressure.resident_warps 64);
  check Alcotest.bool "zero regs unbounded" true (Analysis.Pressure.resident_warps 0 > 1000)

let suite =
  [
    Alcotest.test_case "pressure" `Quick test_pressure;
    Alcotest.test_case "resident warps" `Quick test_resident_warps;
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "cfg loop backedge" `Quick test_cfg_loop_backedge;
    Alcotest.test_case "cfg reachable/rpo" `Quick test_cfg_reachable_rpo;
    Alcotest.test_case "dominance diamond" `Quick test_dominance_diamond;
    Alcotest.test_case "dominance loop" `Quick test_dominance_loop;
    Alcotest.test_case "instr dominates" `Quick test_instr_dominates;
    Alcotest.test_case "liveness straight line" `Quick test_liveness_straight_line;
    Alcotest.test_case "liveness loop carried" `Quick test_liveness_loop_carried;
    Alcotest.test_case "reaching multi def" `Quick test_reaching_multi_def;
    Alcotest.test_case "reaching input" `Quick test_reaching_input;
    Alcotest.test_case "duchain instances" `Quick test_duchain_instances;
    Alcotest.test_case "duchain merged group" `Quick test_duchain_merged_group;
    Alcotest.test_case "duchain inputs" `Quick test_duchain_inputs;
  ]
