(* Regenerates test/perf_golden.json: the full Sim.Perf result of every
   registry benchmark under each scheduler x policy x banking config the
   differential test (test_perf_golden.ml) checks.  The committed file
   was captured from the pre-predecode list-based engine; re-run this
   only when the simulated semantics deliberately change, never to make
   a perf-only rewrite pass. *)

let warps = 8
let max_dynamic = 200

let schedulers = [ ("single", Sim.Perf.Single_level); ("two4", Sim.Perf.Two_level 4) ]
let policies = [ ("dep", Sim.Perf.On_dependence); ("strand", Sim.Perf.At_strand_boundaries) ]
let banks = [ 0; 4 ]

let breakdown_json (b : Sim.Perf.stall_breakdown) =
  Obs.Json.Arr (List.map (fun (_, n) -> Obs.Json.int n) (Sim.Perf.breakdown_fields b))

let result_json bench sname pname bank (r : Sim.Perf.result) =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.Str bench);
      ("sched", Obs.Json.Str sname);
      ("policy", Obs.Json.Str pname);
      ("banks", Obs.Json.int bank);
      ("cycles", Obs.Json.int r.Sim.Perf.cycles);
      ("instructions", Obs.Json.int r.Sim.Perf.instructions);
      ("desched_events", Obs.Json.int r.Sim.Perf.desched_events);
      ("stalls", breakdown_json r.Sim.Perf.stalls);
      ( "per_warp",
        Obs.Json.Arr
          (Array.to_list
             (Array.map
                (fun (w : Sim.Perf.warp_stats) -> breakdown_json w.Sim.Perf.breakdown)
                r.Sim.Perf.per_warp)) );
      ( "sched_stats",
        Obs.Json.Arr
          (List.map Obs.Json.int
             [
               r.Sim.Perf.sched.Sim.Perf.entries;
               r.Sim.Perf.sched.Sim.Perf.exits;
               r.Sim.Perf.sched.Sim.Perf.resident_cycles;
               r.Sim.Perf.sched.Sim.Perf.desched_long_latency;
               r.Sim.Perf.sched.Sim.Perf.desched_strand_boundary;
               r.Sim.Perf.sched.Sim.Perf.desched_bank_conflict;
             ]) );
    ]

let () =
  let entries =
    List.concat_map
      (fun (e : Workloads.Registry.entry) ->
        let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
        List.concat_map
          (fun (sname, scheduler) ->
            List.concat_map
              (fun (pname, policy) ->
                List.map
                  (fun bank ->
                    let mrf_banks = if bank = 0 then None else Some bank in
                    let r =
                      Sim.Perf.run ~warps ~max_dynamic_per_warp:max_dynamic ?mrf_banks
                        ~scheduler ~policy ctx
                    in
                    result_json e.Workloads.Registry.name sname pname bank r)
                  banks)
              policies)
          schedulers)
      (Workloads.Registry.all ())
  in
  Obs.Json.to_channel stdout
    (Obs.Json.Obj
       [
         ("warps", Obs.Json.int warps);
         ("max_dynamic_per_warp", Obs.Json.int max_dynamic);
         ("runs", Obs.Json.Arr entries);
       ]);
  print_newline ()
