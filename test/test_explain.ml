(* Tests for the decision-level introspection layer: the allocation
   explainer (zero-cost-when-off, placement-neutral, manifest-neutral),
   per-instruction energy attribution, and the simulator counter
   tracks. *)

let check = Alcotest.check

(* The explainer and counter recorders are global; leave them off for
   whoever runs next. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.Explain.disable ();
      Obs.Counters.set_enabled false;
      Obs.Counters.reset ();
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let kernel_of name =
  match Workloads.Registry.find name with
  | Some e -> Lazy.force e.Workloads.Registry.kernel
  | None -> Alcotest.failf "unknown benchmark %s" name

let kernels_of name =
  match Workloads.Registry.find name with
  | Some e -> Lazy.force e.Workloads.Registry.kernels
  | None -> Alcotest.failf "unknown benchmark %s" name

let config () = Alloc.Config.make ~orf_entries:3 ~lrf:Alloc.Config.Split ()

(* --- Placement neutrality ----------------------------------------- *)

(* Property (satellite of the explainer): recording decisions must not
   change what the allocator decides. *)
let test_placements_identical_on_off () =
  List.iter
    (fun bench ->
      List.iter
        (fun k ->
          let config = config () in
          let ctx = Alloc.Context.create k in
          Obs.Explain.disable ();
          let p_off, s_off = Alloc.Allocator.run config ctx in
          let sink, _decisions = Obs.Explain.memory_sink () in
          Obs.Explain.set_sink sink;
          let p_on, s_on = Alloc.Allocator.run config ctx in
          Obs.Explain.disable ();
          check Alcotest.bool
            (Printf.sprintf "%s/%s: same placement" bench k.Ir.Kernel.name)
            true (p_off = p_on);
          check Alcotest.bool
            (Printf.sprintf "%s/%s: same stats" bench k.Ir.Kernel.name)
            true (s_off = s_on))
        (kernels_of bench))
    [ "MatrixMul"; "Reduction"; "hotspot"; "Mandelbrot" ]

(* --- One decision per live-range unit ----------------------------- *)

let outcome_is_lrf (d : Obs.Explain.decision) =
  match d.Obs.Explain.outcome with Obs.Explain.To_lrf _ -> true | _ -> false

let outcome_is_orf (d : Obs.Explain.decision) =
  match d.Obs.Explain.outcome with Obs.Explain.To_orf _ -> true | _ -> false

let outcome_is_partial (d : Obs.Explain.decision) =
  match d.Obs.Explain.outcome with
  | Obs.Explain.To_orf { shortened; _ } -> shortened > 0
  | _ -> false

let test_decision_counts_match_stats () =
  List.iter
    (fun bench ->
      let k = kernel_of bench in
      let config = config () in
      let ctx = Alloc.Context.create k in
      let sink, decisions = Obs.Explain.memory_sink () in
      Obs.Explain.set_sink sink;
      let _placement, stats = Alloc.Allocator.run config ctx in
      Obs.Explain.disable ();
      let ds = decisions () in
      let count p = List.length (List.filter p ds) in
      check Alcotest.int
        (bench ^ ": one decision per unit")
        (stats.Alloc.Allocator.write_units + stats.Alloc.Allocator.read_units)
        (List.length ds);
      check Alcotest.int (bench ^ ": LRF outcomes") stats.Alloc.Allocator.lrf_allocated
        (count outcome_is_lrf);
      check Alcotest.int (bench ^ ": ORF outcomes") stats.Alloc.Allocator.orf_allocated
        (count outcome_is_orf);
      check Alcotest.int (bench ^ ": partial outcomes")
        stats.Alloc.Allocator.partial_allocated (count outcome_is_partial);
      (* Deterministic emission: seq is the emission index, write units
         before read units. *)
      List.iteri
        (fun i (d : Obs.Explain.decision) ->
          check Alcotest.int (bench ^ ": seq is dense") i d.Obs.Explain.seq)
        ds;
      let rec no_write_after_read seen_read = function
        | [] -> true
        | d :: tl ->
          (match d.Obs.Explain.kind with
           | "read_unit" -> no_write_after_read true tl
           | _ -> (not seen_read) && no_write_after_read false tl)
      in
      check Alcotest.bool (bench ^ ": write units first") true
        (no_write_after_read false ds);
      (* A chosen candidate exists exactly when the unit was placed. *)
      List.iter
        (fun (d : Obs.Explain.decision) ->
          let chosen =
            List.exists
              (fun (c : Obs.Explain.candidate) -> c.Obs.Explain.verdict = Obs.Explain.Chosen)
              d.Obs.Explain.candidates
          in
          check Alcotest.bool (bench ^ ": chosen iff placed") (Obs.Explain.placed d) chosen)
        ds)
    [ "MatrixMul"; "Reduction"; "cp"; "hotspot" ]

(* --- Determinism of the event stream ------------------------------ *)

let test_decisions_deterministic () =
  let k = kernel_of "MatrixMul" in
  let config = config () in
  let run () =
    let ctx = Alloc.Context.create k in
    let sink, decisions = Obs.Explain.memory_sink () in
    Obs.Explain.set_sink sink;
    ignore (Alloc.Allocator.run config ctx);
    Obs.Explain.disable ();
    List.map (fun d -> Obs.Json.to_string (Obs.Explain.to_json d)) (decisions ())
  in
  check Alcotest.(list string) "two runs emit identical streams" (run ()) (run ())

(* --- JSONL round-trip --------------------------------------------- *)

let test_json_roundtrip () =
  let k = kernel_of "Reduction" in
  let config = config () in
  let ctx = Alloc.Context.create k in
  let sink, decisions = Obs.Explain.memory_sink () in
  Obs.Explain.set_sink sink;
  ignore (Alloc.Allocator.run config ctx);
  Obs.Explain.disable ();
  let ds = decisions () in
  check Alcotest.bool "some decisions recorded" true (ds <> []);
  List.iter
    (fun d ->
      let line = Obs.Json.to_string (Obs.Explain.to_json d) in
      match Obs.Json.parse line with
      | Error e -> Alcotest.fail e
      | Ok j ->
        (match Obs.Explain.of_json j with
         | Error e -> Alcotest.fail e
         | Ok d' ->
           check Alcotest.string "re-encode is byte-identical" line
             (Obs.Json.to_string (Obs.Explain.to_json d'))))
    ds

let test_of_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok j ->
        (match Obs.Explain.of_json j with
         | Error _ -> ()
         | Ok _ -> Alcotest.failf "accepted %s" s))
    [ "{}"; "{\"ev\":\"span\"}"; "[1,2]"; "{\"ev\":\"decision\",\"seq\":\"x\"}" ]

(* --- Manifest neutrality (byte-level, across --jobs) --------------- *)

(* Scrub the only wall-clock field ([total_ms]) and the recorded
   parallelism ([options.jobs] — how the run was parallelised, never a
   result) so byte comparison is meaningful. *)
let rec scrub_total_ms = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.map
         (fun (k, v) ->
           if k = "total_ms" || k = "jobs" then (k, Obs.Json.Num 0.0)
           else (k, scrub_total_ms v))
         fields)
  | Obs.Json.Arr xs -> Obs.Json.Arr (List.map scrub_total_ms xs)
  | j -> j

let collect_scrubbed ~jobs =
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Experiments.Sweep.clear_caches ();
  let opts =
    Experiments.Options.with_jobs
      (Experiments.Options.with_benchmarks
         { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
         [ "VectorAdd"; "MatrixMul" ])
      jobs
  in
  let m = Experiments.Run_manifest.collect opts in
  Obs.Json.to_string (scrub_total_ms (Obs.Manifest.to_json m))

let test_manifest_bytes_explainer_on_off () =
  Obs.Explain.disable ();
  let off = collect_scrubbed ~jobs:1 in
  let sink, _ = Obs.Explain.memory_sink () in
  Obs.Explain.set_sink sink;
  let on = collect_scrubbed ~jobs:1 in
  let on_par = collect_scrubbed ~jobs:4 in
  Obs.Explain.disable ();
  check Alcotest.string "explainer does not perturb the manifest" off on;
  check Alcotest.string "--jobs parity holds with the explainer on" off on_par

(* --- Energy attribution ------------------------------------------- *)

let test_attribution_sums_to_total () =
  let k = kernel_of "MatrixMul" in
  let config = config () in
  let ctx = Alloc.Context.create k in
  let placement = Alloc.Allocator.place config ctx in
  let r =
    Sim.Traffic.run ~warps:4 ~attribution:true ctx (Sim.Traffic.Sw { config; placement })
  in
  let params = Energy.Params.default in
  check Alcotest.bool "attribution enabled" true
    (Energy.Counts.attribution_enabled r.Sim.Traffic.counts);
  let energies = Energy.Counts.attributed_energies params ~orf_entries:3 r.Sim.Traffic.counts in
  check Alcotest.int "one slot per static instruction" (Ir.Kernel.instr_count k)
    (Array.length energies);
  let sum = Array.fold_left ( +. ) 0.0 energies in
  let total =
    (Energy.Counts.energy params ~orf_entries:3 r.Sim.Traffic.counts).Energy.Counts.total
  in
  check (Alcotest.float 1e-6) "attributed energy sums to the breakdown total" total sum

let test_attribution_off_is_empty () =
  let c = Energy.Counts.create () in
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~pc:0 ~n:3 ();
  check Alcotest.bool "off by default" false (Energy.Counts.attribution_enabled c);
  check Alcotest.int "no table" 0
    (Array.length (Energy.Counts.attributed_energies Energy.Params.default ~orf_entries:3 c));
  check (Alcotest.float 0.0) "instr_energy is 0 when off" 0.0
    (Energy.Counts.instr_energy Energy.Params.default ~orf_entries:3 c ~pc:0)

let test_top_instrs_ordering () =
  let c = Energy.Counts.create () in
  Energy.Counts.enable_attribution c ~instrs:4;
  (* pc 2 heaviest, pcs 0 and 3 tie, pc 1 zero. *)
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~pc:2 ~n:10 ();
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~pc:0 ~n:2 ();
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~pc:3 ~n:2 ();
  let top = Energy.Counts.top_instrs Energy.Params.default ~orf_entries:3 ~n:3 c in
  check Alcotest.(list int) "energy descending, pc ascending on ties" [ 2; 0; 3 ]
    (List.map fst top);
  (* Out-of-range pcs are dropped from attribution, still counted. *)
  Energy.Counts.add_write c Energy.Model.Mrf Energy.Model.Private ~pc:99 ~n:5 ();
  check Alcotest.int "aggregate keeps out-of-range counts" 5
    (Energy.Counts.writes c Energy.Model.Mrf);
  check (Alcotest.float 0.0) "attribution drops them" 0.0
    (Energy.Counts.instr_energy Energy.Params.default ~orf_entries:3 c ~pc:99)

let test_merge_adopts_attribution () =
  let params = Energy.Params.default in
  let a = Energy.Counts.create () in
  let b = Energy.Counts.create () in
  Energy.Counts.enable_attribution b ~instrs:2;
  Energy.Counts.add_read b Energy.Model.Orf Energy.Model.Private ~pc:1 ~n:4 ();
  Energy.Counts.merge_into ~dst:a b;
  check Alcotest.bool "dst adopts the table" true (Energy.Counts.attribution_enabled a);
  check Alcotest.bool "adoption is a copy" false
    (Energy.Counts.instr_energy params ~orf_entries:3 a ~pc:1 = 0.0);
  Energy.Counts.add_read b Energy.Model.Orf Energy.Model.Private ~pc:1 ~n:4 ();
  let ea = Energy.Counts.instr_energy params ~orf_entries:3 a ~pc:1 in
  let eb = Energy.Counts.instr_energy params ~orf_entries:3 b ~pc:1 in
  check Alcotest.bool "src growth does not leak into dst" true (eb > ea);
  let wrong = Energy.Counts.create () in
  Energy.Counts.enable_attribution wrong ~instrs:5;
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Energy.Counts.merge_into: attribution tables differ in size")
    (fun () -> Energy.Counts.merge_into ~dst:a wrong)

(* --- Counter tracks ----------------------------------------------- *)

let expected_tracks =
  [
    "alloc.lrf_occupancy"; "alloc.orf_occupancy"; "perf.active_warps"; "perf.issued";
    "perf.rf_accesses"; "simt.active_threads"; "traffic.lrf_accesses";
    "traffic.mrf_accesses"; "traffic.orf_accesses";
  ]

let run_counter_workload () =
  Obs.Counters.reset ();
  let k = kernel_of "Reduction" in
  let config = config () in
  let ctx = Alloc.Context.create k in
  let placement = Alloc.Allocator.place config ctx in
  ignore (Sim.Traffic.run ~warps:4 ctx (Sim.Traffic.Sw { config; placement }));
  ignore
    (Sim.Perf.run ~warps:4 ~scheduler:(Sim.Perf.Two_level 2) ~policy:Sim.Perf.On_dependence ctx);
  ignore (Sim.Simt.traffic ~warps:4 ctx ~scheme:(`Sw (config, placement)));
  Obs.Counters.tracks ()

(* Golden-stability property: simulated-time stamps make fixed-seed
   counter tracks byte-deterministic, so the exported Perfetto JSON
   (spans excluded — those carry wall clock) reproduces exactly. *)
let test_counter_tracks_deterministic () =
  Obs.Counters.set_enabled true;
  let t1 = run_counter_workload () in
  let t2 = run_counter_workload () in
  Obs.Counters.set_enabled false;
  check Alcotest.(list string) "every simulator published its tracks" expected_tracks
    (List.map (fun (t : Obs.Counters.track) -> t.Obs.Counters.track) t1);
  check Alcotest.bool "tracks are run-to-run identical" true (t1 = t2);
  let export ts = Obs.Trace_export.to_string ~counters:ts [] in
  check Alcotest.string "exported JSON is byte-stable" (export t1) (export t2)

let test_counter_export_shape () =
  Obs.Counters.set_enabled true;
  let tracks = run_counter_workload () in
  Obs.Counters.set_enabled false;
  let j =
    match Obs.Json.parse (Obs.Trace_export.to_string ~counters:tracks []) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  let events =
    match Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents"
  in
  let counter_events =
    List.filter
      (fun e -> Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str = Some "C")
      events
  in
  check Alcotest.bool "counter events present" true (counter_events <> []);
  List.iter
    (fun e ->
      check Alcotest.(option int) "counter events live on pid 2" (Some 2)
        (Option.bind (Obs.Json.member "pid" e) Obs.Json.to_int))
    counter_events;
  (* Samples recorded in the serial workload all carry the recording
     domain as tid. *)
  let tids =
    List.sort_uniq compare
      (List.filter_map (fun e -> Option.bind (Obs.Json.member "tid" e) Obs.Json.to_int)
         counter_events)
  in
  check Alcotest.int "serial workload records one tid" 1 (List.length tids)

(* Per-domain tid separation: samples from different domains land on
   different counter-track rows. *)
let test_counter_domain_separation () =
  Obs.Counters.set_enabled true;
  Obs.Counters.reset ();
  Obs.Counters.sample "sep.track" ~at:0.0 1.0;
  let d = Domain.spawn (fun () -> Obs.Counters.sample "sep.track" ~at:1.0 2.0) in
  Domain.join d;
  let tracks = Obs.Counters.tracks () in
  Obs.Counters.set_enabled false;
  (match tracks with
   | [ t ] ->
     let domains =
       List.sort_uniq compare
         (List.map (fun (s : Obs.Counters.sample) -> s.Obs.Counters.domain) t.Obs.Counters.samples)
     in
     check Alcotest.int "two recording domains" 2 (List.length domains);
     let j =
       match Obs.Json.parse (Obs.Trace_export.to_string ~counters:tracks []) with
       | Ok j -> j
       | Error e -> Alcotest.fail e
     in
     let events =
       Option.value ~default:[]
         (Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list)
     in
     let tids =
       List.sort_uniq compare
         (List.filter_map
            (fun e ->
              if Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str = Some "C" then
                Option.bind (Obs.Json.member "tid" e) Obs.Json.to_int
              else None)
            events)
     in
     check Alcotest.(list int) "tid per domain" domains tids
   | ts -> Alcotest.failf "expected one track, got %d" (List.length ts))

let test_counters_disabled_record_nothing () =
  Obs.Counters.set_enabled false;
  Obs.Counters.reset ();
  Obs.Counters.sample "nope" ~at:0.0 1.0;
  check Alcotest.int "no samples when disabled" 0 (List.length (Obs.Counters.tracks ()))

(* --- Metrics histogram under concurrent observation (lock fix) ----- *)

let test_histogram_concurrent_snapshot () =
  let r = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:r "conc.hist" in
  let writers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to 999 do
              Obs.Metrics.observe h (float_of_int ((w * 1000) + i))
            done))
  in
  (* Snapshot while writers run: percentile sorting happens outside the
     histogram mutex, so this must neither deadlock nor crash. *)
  for _ = 1 to 50 do
    ignore (Obs.Metrics.snapshot ~registry:r ())
  done;
  List.iter Domain.join writers;
  let s =
    match List.assoc_opt "conc.hist" (Obs.Metrics.snapshot ~registry:r ()).Obs.Metrics.histograms with
    | Some s -> s
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  check Alcotest.int "all observations counted" 4000 s.Obs.Metrics.count;
  check (Alcotest.float 1e-9) "min" 0.0 s.Obs.Metrics.min;
  check (Alcotest.float 1e-9) "max" 3999.0 s.Obs.Metrics.max;
  check Alcotest.bool "median in range" true
    (s.Obs.Metrics.p50 >= 1000.0 && s.Obs.Metrics.p50 <= 3000.0)

let suite =
  [
    Alcotest.test_case "placements identical on/off" `Quick
      (isolated test_placements_identical_on_off);
    Alcotest.test_case "decision counts match stats" `Quick
      (isolated test_decision_counts_match_stats);
    Alcotest.test_case "decision stream deterministic" `Quick
      (isolated test_decisions_deterministic);
    Alcotest.test_case "decision JSON round-trip" `Quick (isolated test_json_roundtrip);
    Alcotest.test_case "decision JSON rejects garbage" `Quick
      (isolated test_of_json_rejects_garbage);
    Alcotest.test_case "manifest bytes: explainer + --jobs parity" `Slow
      (isolated test_manifest_bytes_explainer_on_off);
    Alcotest.test_case "attribution sums to total" `Quick
      (isolated test_attribution_sums_to_total);
    Alcotest.test_case "attribution off is empty" `Quick (isolated test_attribution_off_is_empty);
    Alcotest.test_case "top instrs ordering" `Quick (isolated test_top_instrs_ordering);
    Alcotest.test_case "merge adopts attribution" `Quick (isolated test_merge_adopts_attribution);
    Alcotest.test_case "counter tracks deterministic" `Quick
      (isolated test_counter_tracks_deterministic);
    Alcotest.test_case "counter export shape" `Quick (isolated test_counter_export_shape);
    Alcotest.test_case "counter domain separation" `Quick
      (isolated test_counter_domain_separation);
    Alcotest.test_case "counters disabled record nothing" `Quick
      (isolated test_counters_disabled_record_nothing);
    Alcotest.test_case "histogram concurrent snapshot" `Quick
      (isolated test_histogram_concurrent_snapshot);
  ]
