(* Differential gate for the allocation-free simulator core.

   test/perf_golden.json was captured from the pre-predecode,
   list-based Sim.Perf engine (see gen_perf_golden.ml).  The rewrite
   onto Dec + Scratch claims bit-identical semantics; this suite holds
   it to that: every registry benchmark under every scheduler x policy
   x banking configuration must reproduce the committed results
   byte-for-byte, scratch reuse must not leak state between runs, and
   the steady-state cycle loop must not allocate. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

(* --- differential vs the committed pre-rewrite engine -------------- *)

let warps = 8
let max_dynamic = 200

let schedulers = [ ("single", Sim.Perf.Single_level); ("two4", Sim.Perf.Two_level 4) ]
let policies = [ ("dep", Sim.Perf.On_dependence); ("strand", Sim.Perf.At_strand_boundaries) ]
let banks = [ 0; 4 ]

(* Mirrors gen_perf_golden.ml exactly: the comparison is on the
   serialized JSON, so any drift in any recorded field shows up. *)
let breakdown_json (b : Sim.Perf.stall_breakdown) =
  Obs.Json.Arr (List.map (fun (_, n) -> Obs.Json.int n) (Sim.Perf.breakdown_fields b))

let result_json bench sname pname bank (r : Sim.Perf.result) =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.Str bench);
      ("sched", Obs.Json.Str sname);
      ("policy", Obs.Json.Str pname);
      ("banks", Obs.Json.int bank);
      ("cycles", Obs.Json.int r.Sim.Perf.cycles);
      ("instructions", Obs.Json.int r.Sim.Perf.instructions);
      ("desched_events", Obs.Json.int r.Sim.Perf.desched_events);
      ("stalls", breakdown_json r.Sim.Perf.stalls);
      ( "per_warp",
        Obs.Json.Arr
          (Array.to_list
             (Array.map
                (fun (w : Sim.Perf.warp_stats) -> breakdown_json w.Sim.Perf.breakdown)
                r.Sim.Perf.per_warp)) );
      ( "sched_stats",
        Obs.Json.Arr
          (List.map Obs.Json.int
             [
               r.Sim.Perf.sched.Sim.Perf.entries;
               r.Sim.Perf.sched.Sim.Perf.exits;
               r.Sim.Perf.sched.Sim.Perf.resident_cycles;
               r.Sim.Perf.sched.Sim.Perf.desched_long_latency;
               r.Sim.Perf.sched.Sim.Perf.desched_strand_boundary;
               r.Sim.Perf.sched.Sim.Perf.desched_bank_conflict;
             ]) );
    ]

let current_doc () =
  let entries =
    List.concat_map
      (fun (e : Workloads.Registry.entry) ->
        let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
        List.concat_map
          (fun (sname, scheduler) ->
            List.concat_map
              (fun (pname, policy) ->
                List.map
                  (fun bank ->
                    let mrf_banks = if bank = 0 then None else Some bank in
                    let r =
                      Sim.Perf.run ~warps ~max_dynamic_per_warp:max_dynamic ?mrf_banks
                        ~scheduler ~policy ctx
                    in
                    result_json e.Workloads.Registry.name sname pname bank r)
                  banks)
              policies)
          schedulers)
      (Workloads.Registry.all ())
  in
  Obs.Json.Obj
    [
      ("warps", Obs.Json.int warps);
      ("max_dynamic_per_warp", Obs.Json.int max_dynamic);
      ("runs", Obs.Json.Arr entries);
    ]

let test_differential_golden () =
  let committed =
    In_channel.with_open_text "perf_golden.json" In_channel.input_all |> String.trim
  in
  (* Sanity: the committed capture is well-formed and has full coverage. *)
  (match Obs.Json.parse committed with
   | Error e -> Alcotest.failf "committed golden does not parse: %s" e
   | Ok doc ->
     let runs =
       match Option.bind (Obs.Json.member "runs" doc) Obs.Json.to_list with
       | Some l -> List.length l
       | None -> 0
     in
     check Alcotest.int "golden run count"
       (List.length (Workloads.Registry.all ())
       * List.length schedulers * List.length policies * List.length banks)
       runs);
  let current = Obs.Json.to_string (current_doc ()) in
  if not (String.equal committed current) then
    Alcotest.fail
      "current engine diverges from the committed pre-rewrite golden \
       (test/perf_golden.json); the rewrite must be bit-identical"

(* --- round-robin issue order -------------------------------------- *)

(* [n] independent ALU instructions: never blocked, so the scheduler's
   arbitration alone decides everything. *)
let independent_kernel n =
  let b = B.create "indep" in
  for _ = 1 to n do
    ignore (B.op0 b Op.Mov ())
  done;
  B.finalize b

let test_round_robin_rotation () =
  let k_instrs = 5 and w = 4 in
  let ctx = Alloc.Context.create (independent_kernel k_instrs) in
  let r =
    Sim.Perf.run ~warps:w ~max_dynamic_per_warp:100 ~scheduler:Sim.Perf.Single_level
      ~policy:Sim.Perf.On_dependence ctx
  in
  (* Strict rotation: warp [v] gets its [k]-th issue at cycle [k*w + v],
     so the run takes exactly [w * k_instrs] cycles and warp [v] spends
     its tail [w - 1 - v] cycles classified Finished. *)
  check Alcotest.int "cycles" (w * k_instrs) r.Sim.Perf.cycles;
  check Alcotest.int "instructions" (w * k_instrs) r.Sim.Perf.instructions;
  check Alcotest.int "no deschedules" 0 r.Sim.Perf.desched_events;
  check Alcotest.int "no dependence stalls" 0
    (r.Sim.Perf.stalls.Sim.Perf.wait_long_latency
    + r.Sim.Perf.stalls.Sim.Perf.wait_short_latency
    + r.Sim.Perf.stalls.Sim.Perf.bank_conflict_serialization
    + r.Sim.Perf.stalls.Sim.Perf.descheduled_pending);
  Array.iter
    (fun (ws : Sim.Perf.warp_stats) ->
      let v = ws.Sim.Perf.warp in
      check Alcotest.int
        (Printf.sprintf "warp %d issued" v)
        k_instrs ws.Sim.Perf.breakdown.Sim.Perf.issued;
      check Alcotest.int
        (Printf.sprintf "warp %d finished tail" v)
        (w - 1 - v)
        ws.Sim.Perf.breakdown.Sim.Perf.finished;
      check Alcotest.int
        (Printf.sprintf "warp %d lost arbitration" v)
        ((w * k_instrs) - k_instrs - (w - 1 - v))
        ws.Sim.Perf.breakdown.Sim.Perf.no_issue_slot)
    r.Sim.Perf.per_warp;
  check Alcotest.int "entries" w r.Sim.Perf.sched.Sim.Perf.entries;
  check Alcotest.int "exits" 0 r.Sim.Perf.sched.Sim.Perf.exits;
  check Alcotest.int "resident" (w * w * k_instrs) r.Sim.Perf.sched.Sim.Perf.resident_cycles

(* --- wake-order refill -------------------------------------------- *)

(* One long-latency load (no sources) feeding one ALU consumer.  Under
   Two_level 1 each warp issues its load, blocks on the consumer, and
   is descheduled with a wake at the load's ready cycle; the refill
   must re-admit warps in wake order. *)
let load_consumer_kernel () =
  let b = B.create "ldc" in
  let x = B.op0 b Op.Ld_global () in
  ignore (B.op2 b Op.Iadd x x);
  B.finalize b

let test_wake_order_refill () =
  let ctx = Alloc.Context.create (load_consumer_kernel ()) in
  let r =
    Sim.Perf.run ~warps:3 ~max_dynamic_per_warp:100 ~scheduler:(Sim.Perf.Two_level 1)
      ~policy:Sim.Perf.On_dependence ctx
  in
  let lat = Op.latency Op.Ld_global in
  let issue = Op.issue_cycles Op.Ld_global in
  (* Memory-unit serialization spaces the loads [issue] cycles apart:
     warp v issues its load at cycle [v * issue] and is descheduled
     with wake [v * issue + lat].  Warps re-enter strictly in that
     wake order; the last consumer issues at warp 2's wake and the run
     ends one cycle later. *)
  check Alcotest.int "cycles" ((2 * issue) + lat + 1) r.Sim.Perf.cycles;
  check Alcotest.int "instructions" 6 r.Sim.Perf.instructions;
  check Alcotest.int "desched events" 3 r.Sim.Perf.desched_events;
  check Alcotest.int "desched on long latency" 3
    r.Sim.Perf.sched.Sim.Perf.desched_long_latency;
  (* initial fill + 2 promotions on deschedule + 3 wake-ups *)
  check Alcotest.int "entries" 6 r.Sim.Perf.sched.Sim.Perf.entries;
  (* 3 deschedules + warps 0 and 1 removed on finish (warp 2 ends the run) *)
  check Alcotest.int "exits" 5 r.Sim.Perf.sched.Sim.Perf.exits;
  Array.iter
    (fun (ws : Sim.Perf.warp_stats) ->
      check Alcotest.int
        (Printf.sprintf "warp %d issued" ws.Sim.Perf.warp)
        2 ws.Sim.Perf.breakdown.Sim.Perf.issued)
    r.Sim.Perf.per_warp

(* --- probe purity / scratch independence --------------------------- *)

let test_probe_pure_and_scratch_independent () =
  let e = List.hd (Workloads.Registry.all ()) in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let run ?scratch () =
    Sim.Perf.run ~warps:8 ~max_dynamic_per_warp:300 ~mrf_banks:4
      ?scratch ~scheduler:(Sim.Perf.Two_level 4) ~policy:Sim.Perf.At_strand_boundaries ctx
  in
  (* At_strand_boundaries classification consults the outstanding
     long-latency buffer every cycle; the probe must be read-only, so
     results cannot depend on which scratch is used or how often it was
     reused.  (The list-based engine's probe mutated that state.) *)
  let fresh = run ~scratch:(Sim.Scratch.create ()) () in
  let dls1 = run () in
  let dls2 = run () in
  let reused =
    let s = Sim.Scratch.create () in
    ignore (run ~scratch:s ());
    run ~scratch:s ()
  in
  check Alcotest.bool "fresh = domain-local" true (fresh = dls1);
  check Alcotest.bool "repeat on domain-local scratch" true (dls1 = dls2);
  check Alcotest.bool "reused scratch" true (fresh = reused)

(* --- steady-state allocation -------------------------------------- *)

let minor_delta f =
  let before = Gc.minor_words () in
  let r = f () in
  (r, Gc.minor_words () -. before)

(* The longest-running registry benchmark, so per-run constants drown
   in the per-cycle signal. *)
let long_bench () =
  List.find
    (fun (e : Workloads.Registry.entry) -> e.Workloads.Registry.name = "sad")
    (Workloads.Registry.all ())

let test_perf_zero_alloc_per_cycle () =
  let e = long_bench () in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let scratch = Sim.Scratch.create () in
  let run () =
    Sim.Perf.run ~warps:32 ~max_dynamic_per_warp:600 ~scratch
      ~scheduler:(Sim.Perf.Two_level 8) ~policy:Sim.Perf.On_dependence ctx
  in
  let r0 = run () in
  ignore (run ());
  let r1, delta = minor_delta run in
  check Alcotest.bool "reuse preserves result" true (r0 = r1);
  let cycles = float_of_int r1.Sim.Perf.cycles in
  check Alcotest.bool "run is long enough to mean something" true (cycles > 5_000.0);
  (* The whole warmed run may allocate only its result (a few hundred
     words): the budget is a small constant, far under one word per
     cycle.  The list-based engine spent hundreds of words per cycle. *)
  if delta > 8_192.0 then
    Alcotest.failf "perf run allocated %.0f minor words over %.0f cycles" delta cycles

let test_traffic_zero_alloc_per_instr () =
  let e = long_bench () in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let scratch = Sim.Scratch.create () in
  let run () = Sim.Traffic.run ~warps:32 ~scratch ctx Sim.Traffic.Baseline in
  let r0 = run () in
  ignore (run ());
  let r1, delta = minor_delta run in
  check Alcotest.bool "reuse preserves result" true
    (r0.Sim.Traffic.counts = r1.Sim.Traffic.counts
    && r0.Sim.Traffic.dynamic_instrs = r1.Sim.Traffic.dynamic_instrs);
  let instrs = float_of_int r1.Sim.Traffic.dynamic_instrs in
  check Alcotest.bool "stream is long enough to mean something" true (instrs > 5_000.0);
  (* Per-warp setup allocates a bounded handful of closures; the
     per-instruction stepping path must allocate nothing. *)
  if delta > 8_192.0 +. (0.1 *. instrs) then
    Alcotest.failf "traffic run allocated %.0f minor words over %.0f instrs" delta instrs

let suite =
  [
    Alcotest.test_case "288-config differential vs pre-rewrite golden" `Quick
      test_differential_golden;
    Alcotest.test_case "round-robin rotation is exact" `Quick test_round_robin_rotation;
    Alcotest.test_case "pending warps re-enter in wake order" `Quick test_wake_order_refill;
    Alcotest.test_case "classification probe is pure across scratches" `Quick
      test_probe_pure_and_scratch_independent;
    Alcotest.test_case "perf steady state allocates nothing" `Quick
      test_perf_zero_alloc_per_cycle;
    Alcotest.test_case "traffic stepping allocates nothing" `Quick
      test_traffic_zero_alloc_per_instr;
  ]
