(* Engine-profiler tests: the exact wall x domains accounting, memo
   classification, lock contention counting, recorder neutrality
   (manifest byte-parity across --jobs with the recorder on or off) and
   the engine-report JSON round-trip. *)

let check = Alcotest.check

(* Every test switches the global Eprof recorder; never leave it on. *)
let isolated f () = Fun.protect ~finally:Util.Eprof.stop f

(* --- Region accounting: categories >= 0 and sum to wall x domains --- *)

let profile_map ~jobs ?(label = "test.map") f xs =
  Obs.Engine.profile ~label ~jobs (fun () -> Util.Pool.parallel_map ~jobs ~label f xs)

let busy_work x =
  let acc = ref x in
  for i = 1 to 20_000 do
    acc := (!acc * 31) + i
  done;
  !acc

let test_region_accounting () =
  let input = List.init 32 Fun.id in
  List.iter
    (fun jobs ->
      let results, report = profile_map ~jobs busy_work input in
      check Alcotest.(list int) "results unchanged under profiling" (List.map busy_work input)
        results;
      check Alcotest.(list string) "no invariant violations" [] (Obs.Engine.check report);
      check Alcotest.int "one region" 1 (List.length report.Obs.Engine.regions);
      let reg = List.hd report.Obs.Engine.regions in
      check Alcotest.int "every element became a task" 32 reg.Obs.Engine.tasks;
      check Alcotest.bool "team size within jobs" true (reg.Obs.Engine.domains <= max 1 jobs);
      (* The invariant the analyzer is built around, re-stated here
         explicitly rather than through Engine.check. *)
      check Alcotest.int "categories sum exactly to wall x domains"
        (reg.Obs.Engine.wall_ns * reg.Obs.Engine.domains)
        (Obs.Engine.cat_total reg.Obs.Engine.cats);
      List.iter
        (fun (name, v) ->
          check Alcotest.bool (Printf.sprintf "category %s >= 0 (jobs=%d)" name jobs) true
            (v >= 0))
        (Obs.Engine.cat_list reg.Obs.Engine.cats))
    [ 1; 2; 4; 8 ]

let test_nested_regions_each_exact () =
  let input = List.init 6 (fun i -> List.init 8 (fun j -> (8 * i) + j)) in
  let _, report =
    Obs.Engine.profile ~label:"outer" ~jobs:3 (fun () ->
        Util.Pool.parallel_map ~jobs:3 ~label:"outer"
          (fun xs -> Util.Pool.parallel_map ~jobs:2 ~label:"inner" busy_work xs)
          input)
  in
  check Alcotest.(list string) "nested fan-outs stay exact" [] (Obs.Engine.check report);
  check Alcotest.bool "outer and inner regions all recorded" true
    (List.length report.Obs.Engine.regions >= 7)

(* --- Memo classification: lookups = hits + misses + waits ----------- *)

let test_memo_stats_classification () =
  let memo : (int, int) Util.Memo.t = Util.Memo.create ~name:"test.engine.memo" 8 in
  let get k =
    Util.Memo.find_or_compute memo k (fun () ->
        ignore (Sys.opaque_identity (List.init 2000 Fun.id));
        k * 2)
  in
  (* 64 concurrent lookups of 4 keys: 4 misses, and every other lookup
     is a hit or an in-flight wait. *)
  ignore (Util.Pool.parallel_map ~jobs:8 (fun i -> get (i mod 4)) (List.init 64 Fun.id));
  let s = Util.Memo.stats memo in
  check Alcotest.string "table name" "test.engine.memo" s.Util.Memo.table;
  check Alcotest.int "all lookups counted" 64 s.Util.Memo.lookups;
  check Alcotest.int "one miss per key" 4 s.Util.Memo.misses;
  check Alcotest.int "lookups = hits + misses + waits" s.Util.Memo.lookups
    (s.Util.Memo.hits + s.Util.Memo.misses + s.Util.Memo.waits);
  check Alcotest.bool "waited lookups accumulated wait time" true
    (s.Util.Memo.waits = 0 || s.Util.Memo.wait_ns > 0);
  (* The named table also appears in the global roster. *)
  check Alcotest.bool "registered globally" true
    (List.exists
       (fun (m : Util.Eprof.memo_stats) -> m.table = "test.engine.memo" && m.lookups = 64)
       (Util.Eprof.memo_stats ()))

let test_memo_stats_off_recorder () =
  (* The satellite requirement: stats work with profiling off. *)
  check Alcotest.bool "recorder is off" false (Util.Eprof.enabled ());
  let memo : (string, int) Util.Memo.t = Util.Memo.create 4 in
  ignore (Util.Memo.find_or_compute memo "a" (fun () -> 1));
  ignore (Util.Memo.find_or_compute memo "a" (fun () -> 2));
  ignore (Util.Memo.find_or_compute memo "b" (fun () -> 3));
  let s = Util.Memo.stats memo in
  check Alcotest.string "anonymous table name" "<anon>" s.Util.Memo.table;
  check Alcotest.int "lookups" 3 s.Util.Memo.lookups;
  check Alcotest.int "hits" 1 s.Util.Memo.hits;
  check Alcotest.int "misses" 2 s.Util.Memo.misses;
  check Alcotest.int "waits" 0 s.Util.Memo.waits

(* --- Lock profiling: contended <= acquisitions ---------------------- *)

let test_lock_contention_counting () =
  let before = Util.Eprof.lock_stats () in
  let hist_before =
    match
      List.find_opt (fun (l : Util.Eprof.lock_stats) -> l.lock = "obs.metrics.hist") before
    with
    | Some l -> l
    | None -> Alcotest.fail "obs.metrics.hist lock not registered"
  in
  Util.Eprof.start ();
  let h = Obs.Metrics.histogram "test.engine.contention" in
  (* Hammer one histogram from 4 domains: plenty of acquisitions, and
     every one of them observed while recording. *)
  Util.Pool.parallel_iter ~jobs:4
    (fun i ->
      for k = 0 to 499 do
        Obs.Metrics.observe h (float_of_int ((i * 500) + k))
      done)
    (List.init 4 Fun.id);
  Util.Eprof.stop ();
  let after = Util.Eprof.lock_stats () in
  let hist_after =
    List.find (fun (l : Util.Eprof.lock_stats) -> l.lock = "obs.metrics.hist") after
  in
  let acq = hist_after.Util.Eprof.acquisitions - hist_before.Util.Eprof.acquisitions in
  let cont = hist_after.Util.Eprof.contended - hist_before.Util.Eprof.contended in
  check Alcotest.bool "all 2000 observes counted" true (acq >= 2000);
  check Alcotest.bool "contended <= acquisitions" true (cont <= acq && cont >= 0);
  check Alcotest.bool "wait accumulates only with contention" true
    (cont > 0 || hist_after.Util.Eprof.wait_ns = hist_before.Util.Eprof.wait_ns)

let test_lock_free_when_off () =
  let before = Util.Eprof.lock_stats () in
  let h = Obs.Metrics.histogram "test.engine.quiet" in
  for k = 0 to 99 do
    Obs.Metrics.observe h (float_of_int k)
  done;
  let after = Util.Eprof.lock_stats () in
  check Alcotest.bool "no counters advance with the recorder off" true
    (List.for_all2
       (fun (b : Util.Eprof.lock_stats) (a : Util.Eprof.lock_stats) ->
         b.lock = a.lock && b.acquisitions = a.acquisitions && b.contended = a.contended)
       before after)

(* --- Recorder-off manifest byte-parity at jobs 1 vs 4 --------------- *)

let benches = [ "VectorAdd"; "Reduction"; "cp" ]

let rec scrub = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.map
         (fun (k, v) ->
           if k = "total_ms" || k = "jobs" then (k, Obs.Json.Num 0.0) else (k, scrub v))
         fields)
  | Obs.Json.Arr xs -> Obs.Json.Arr (List.map scrub xs)
  | j -> j

let collect_scrubbed ~jobs =
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Experiments.Sweep.clear_caches ();
  let opts =
    Experiments.Options.with_jobs
      (Experiments.Options.with_benchmarks
         { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
         benches)
      jobs
  in
  let m = Experiments.Run_manifest.collect opts in
  Obs.Json.to_string (scrub (Obs.Manifest.to_json m))

let test_manifest_parity_recorder_off_and_on () =
  check Alcotest.bool "recorder starts off" false (Util.Eprof.enabled ());
  let off_serial = collect_scrubbed ~jobs:1 in
  let off_par = collect_scrubbed ~jobs:4 in
  check Alcotest.string "recorder-off manifests byte-identical at jobs 1 vs 4" off_serial
    off_par;
  Util.Eprof.start ();
  let on_serial = collect_scrubbed ~jobs:1 in
  let on_par = collect_scrubbed ~jobs:4 in
  Util.Eprof.stop ();
  check Alcotest.string "recorder-on manifest matches recorder-off" off_serial on_serial;
  check Alcotest.string "recorder-on parity holds at jobs=4" off_serial on_par

(* --- JSON round-trip ------------------------------------------------ *)

let test_report_json_roundtrip () =
  let _, report = profile_map ~jobs:4 ~label:"roundtrip" busy_work (List.init 16 Fun.id) in
  let j = Obs.Engine.to_json report in
  let s = Obs.Json.to_string j in
  match Obs.Json.parse s with
  | Error e -> Alcotest.failf "engine report JSON does not re-parse: %s" e
  | Ok j' ->
    (match Obs.Engine.of_json j' with
     | Error e -> Alcotest.failf "engine report does not decode: %s" e
     | Ok report' ->
       check Alcotest.string "decode(encode(r)) re-encodes byte-identically" s
         (Obs.Json.to_string (Obs.Engine.to_json report'));
       check Alcotest.bool "decoded report equals the original" true (report' = report);
       check Alcotest.(list string) "decoded report still passes check" []
         (Obs.Engine.check report'))

(* --- Trace rows ----------------------------------------------------- *)

let test_trace_events_shape () =
  let _, report = profile_map ~jobs:2 ~label:"trace" busy_work (List.init 8 Fun.id) in
  let events = Obs.Engine.trace_events ~base_ns:report.Obs.Engine.epoch_ns report in
  check Alcotest.bool "has process metadata + slices" true (List.length events > 8);
  List.iter
    (fun ev ->
      match Obs.Json.member "pid" ev with
      | Some pid ->
        check Alcotest.(option int) "every engine row lives on the engine pid"
          (Some Obs.Engine.trace_pid) (Obs.Json.to_int pid)
      | None -> Alcotest.fail "trace event without pid")
    events;
  (* All rows rebased against the report's own epoch must be sane
     microsecond offsets within the profiled wall. *)
  List.iter
    (fun ev ->
      match Obs.Json.member "ts" ev with
      | Some ts ->
        let v = Option.get (Obs.Json.to_num ts) in
        check Alcotest.bool "ts within [0, wall]" true
          (v >= 0.0 && v <= float_of_int report.Obs.Engine.wall_ns /. 1e3)
      | None -> () (* metadata rows carry no ts *))
    events

let suite =
  [
    Alcotest.test_case "region accounting is exact" `Quick (isolated test_region_accounting);
    Alcotest.test_case "nested regions each exact" `Quick (isolated test_nested_regions_each_exact);
    Alcotest.test_case "memo stats classification" `Quick (isolated test_memo_stats_classification);
    Alcotest.test_case "memo stats with recorder off" `Quick (isolated test_memo_stats_off_recorder);
    Alcotest.test_case "lock contention counting" `Quick (isolated test_lock_contention_counting);
    Alcotest.test_case "locks cost nothing when off" `Quick (isolated test_lock_free_when_off);
    Alcotest.test_case "manifest byte-parity across jobs" `Quick
      (isolated test_manifest_parity_recorder_off_and_on);
    Alcotest.test_case "report JSON round-trip" `Quick (isolated test_report_json_roundtrip);
    Alcotest.test_case "trace rows on the engine pid" `Quick (isolated test_trace_events_shape);
  ]
