(* Gcprof tests: the compute+gc sub-split of the engine profiler's
   useful time (exact at every jobs setting), quick_stat region deltas,
   tolerance of lost ring events, the history gc section's JSONL
   round-trip, trend gating on a GC-share step, and manifest
   byte-parity with the GC recorder on or off. *)

let check = Alcotest.check

(* Every test switches global recorders; never leave either on. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      if Obs.Gcprof.enabled () then ignore (Obs.Gcprof.stop () : Obs.Gcprof.capture);
      Util.Eprof.stop ())
    f

let busy_work x =
  let acc = ref x in
  for i = 1 to 20_000 do
    acc := (!acc * 31) + i
  done;
  !acc

(* Enough allocation to force minor collections inside the region. *)
let alloc_work x =
  let acc = ref 0 in
  for _ = 1 to 50 do
    acc := !acc + List.length (List.init 4_000 (fun i -> (x * i) + 1))
  done;
  !acc

(* --- compute + gc = useful, exactly, at jobs 1 and 4 ---------------- *)

let test_gc_split_exact () =
  List.iter
    (fun jobs ->
      let _, report =
        Obs.Engine.profile ~label:"gcsplit" ~jobs (fun () ->
            Util.Pool.parallel_map ~jobs ~label:"gcsplit.map" alloc_work
              (List.init 16 Fun.id))
      in
      check Alcotest.bool
        (Printf.sprintf "capture present at jobs=%d" jobs)
        true
        (report.Obs.Engine.gc <> None);
      check Alcotest.(list string)
        (Printf.sprintf "no invariant violations at jobs=%d" jobs)
        [] (Obs.Engine.check report);
      List.iter
        (fun (reg : Obs.Engine.region) ->
          let c = reg.Obs.Engine.cats in
          (* The sub-split contract, restated without Engine.check:
             gc is carved out of useful, so compute = useful - gc is
             non-negative and the 7-way budget sum is untouched. *)
          check Alcotest.bool "0 <= gc <= useful" true
            (c.Obs.Engine.gc_ns >= 0 && c.Obs.Engine.gc_ns <= c.Obs.Engine.useful_ns);
          check Alcotest.int "budget sum ignores the sub-split"
            (reg.Obs.Engine.wall_ns * reg.Obs.Engine.domains)
            (Obs.Engine.cat_total c))
        report.Obs.Engine.regions;
      let share = Obs.Engine.gc_share report in
      check Alcotest.bool "gc share is a fraction of useful" true
        (share >= 0.0 && share <= 1.0))
    [ 1; 4 ]

(* --- quick_stat deltas: allocating vs quiet regions ----------------- *)

let test_region_mem_deltas () =
  let _, report =
    Obs.Engine.profile ~label:"mem" ~jobs:1 (fun () ->
        ignore (Util.Pool.parallel_map ~jobs:1 ~label:"mem.alloc" alloc_work [ 1; 2 ]);
        ignore (Util.Pool.parallel_map ~jobs:1 ~label:"mem.quiet" busy_work [ 1; 2 ]))
  in
  let g = match report.Obs.Engine.gc with Some g -> g | None -> Alcotest.fail "no capture" in
  let label_of id =
    match
      List.find_opt (fun (r : Obs.Engine.region) -> r.Obs.Engine.id = id)
        report.Obs.Engine.regions
    with
    | Some r -> r.Obs.Engine.label
    | None -> Alcotest.failf "region_mem names unknown region %d" id
  in
  let words lbl =
    List.filter_map
      (fun (m : Obs.Gcprof.region_mem) ->
        if label_of m.Obs.Gcprof.gm_region = lbl then Some m.Obs.Gcprof.gm_minor_words
        else None)
      g.Obs.Gcprof.c_region_mem
    |> List.fold_left ( +. ) 0.0
  in
  (* One Gc.quick_stat snapshot pair per region: the allocator shows
     up in its own region's delta, not the quiet one's. *)
  check Alcotest.bool "allocating region recorded megaword-scale minor words" true
    (words "mem.alloc" > 100_000.0);
  check Alcotest.bool "quiet region allocates orders of magnitude less" true
    (words "mem.quiet" < words "mem.alloc" /. 10.0);
  (* Deltas are monotone counters read twice; none can be negative. *)
  List.iter
    (fun (m : Obs.Gcprof.region_mem) ->
      check Alcotest.bool "non-negative deltas" true
        (m.Obs.Gcprof.gm_minor_words >= 0.0
        && m.Obs.Gcprof.gm_promoted_words >= 0.0
        && m.Obs.Gcprof.gm_major_words >= 0.0
        && m.Obs.Gcprof.gm_minor_collections >= 0
        && m.Obs.Gcprof.gm_major_collections >= 0))
    g.Obs.Gcprof.c_region_mem

(* --- lost ring events degrade the capture, never the report --------- *)

let test_lost_events_tolerated () =
  let _, report =
    Obs.Engine.profile ~label:"lost" ~jobs:2 (fun () ->
        Util.Pool.parallel_map ~jobs:2 ~label:"lost.map" alloc_work (List.init 8 Fun.id))
  in
  let g = match report.Obs.Engine.gc with Some g -> g | None -> Alcotest.fail "no capture" in
  (* Simulate an overrun ring: the consumer reports dropped events and
     an unmatched phase end.  Attribution degrades (some pauses
     missing) but every invariant and the JSON round-trip survive. *)
  let degraded =
    { report with Obs.Engine.gc = Some { g with Obs.Gcprof.c_lost_events = 7; c_unmatched = 2 } }
  in
  check Alcotest.(list string) "degraded capture passes check" []
    (Obs.Engine.check degraded);
  let s = Obs.Json.to_string (Obs.Engine.to_json degraded) in
  match Obs.Json.parse s with
  | Error e -> Alcotest.failf "degraded report does not re-parse: %s" e
  | Ok j -> (
    match Obs.Engine.of_json j with
    | Error e -> Alcotest.failf "degraded report does not decode: %s" e
    | Ok r' ->
      check Alcotest.bool "lost/unmatched counts survive the round-trip" true
        (match r'.Obs.Engine.gc with
        | Some g' -> g'.Obs.Gcprof.c_lost_events = 7 && g'.Obs.Gcprof.c_unmatched = 2
        | None -> false);
      check Alcotest.string "re-encodes byte-identically" s
        (Obs.Json.to_string (Obs.Engine.to_json r')))

(* --- history gc section: JSONL round-trip + byte stability ---------- *)

let history_record ~gc =
  {
    Obs.History.timestamp = "2026-08-08T00:00:00Z";
    source = "test";
    host =
      {
        Obs.Host.cores = 8;
        os = "Unix";
        ocaml = "5.1.1";
        git_rev = "deadbeef";
        git_dirty = false;
      };
    jobs = 2;
    wall_s = 1.5;
    benches = [];
    perfgate = None;
    engine = None;
    gc;
    jobs2_slower = None;
  }

let test_history_gc_roundtrip () =
  let r =
    history_record
      ~gc:
        (Some
           {
             Obs.History.hg_gc_share = 0.182;
             hg_minor_words = 9_700_000.0;
             hg_pause_p50_ns = 142_000.0;
             hg_pause_p99_ns = 3_143_000.0;
           })
  in
  let once = Obs.History.to_string r in
  (match Obs.History.of_string once with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    check Alcotest.string "encode/decode/re-encode is byte-stable" once
      (Obs.History.to_string decoded);
    (match decoded.Obs.History.gc with
    | Some g -> check (Alcotest.float 1e-9) "gc share survives" 0.182 g.Obs.History.hg_gc_share
    | None -> Alcotest.fail "gc section lost"));
  (* Records without a capture omit the section entirely — the
     pre-gcprof encoding — so old committed lines stay byte-stable. *)
  let bare = Obs.History.to_string (history_record ~gc:None) in
  check Alcotest.bool "no gc key without a capture" false
    (Obs.Json.member "gc"
       (Result.get_ok (Obs.Json.parse bare))
    <> None);
  match Obs.History.of_string bare with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    check Alcotest.bool "absent section decodes to None" true
      (decoded.Obs.History.gc = None);
    check Alcotest.string "bare record also byte-stable" bare
      (Obs.History.to_string decoded)

(* --- trend gate fires on a sustained GC-share step ------------------ *)

let jitter = [| 0.3; -0.2; 0.1; -0.4; 0.25; 0.0; -0.1; 0.35; -0.3; 0.15; -0.25; 0.05 |]

let gc_history ~step =
  List.init 12 (fun i ->
      let base = if step && i >= 8 then 0.15 else 0.05 in
      {
        (history_record
           ~gc:
             (Some
                {
                  Obs.History.hg_gc_share = base +. (jitter.(i) /. 1000.0);
                  hg_minor_words = 9.7e6 +. (jitter.(i) *. 1000.0);
                  hg_pause_p50_ns = 140_000.0;
                  hg_pause_p99_ns = 3_000_000.0;
                }))
        with
        Obs.History.timestamp = Printf.sprintf "2026-08-%02dT00:00:00Z" (i + 1);
        host =
          {
            Obs.Host.cores = 8;
            os = "Unix";
            ocaml = "5.1.1";
            git_rev = Printf.sprintf "rev%03d" i;
            git_dirty = false;
          };
      })

let test_trend_gates_gc_share_step () =
  let g = Obs.Trend.gate (gc_history ~step:true) in
  check Alcotest.int "3x gc-share step fails the gate" 1 g.Obs.Trend.g_exit;
  check Alcotest.bool "failure names gc.share" true
    (List.exists
       (fun (f : Obs.Trend.failure) -> f.Obs.Trend.f_series = "gc.share")
       g.Obs.Trend.g_failures);
  let clean = Obs.Trend.gate (gc_history ~step:false) in
  check Alcotest.int "flat gc share passes" 0 clean.Obs.Trend.g_exit

(* --- manifest byte-parity with the GC recorder on or off ------------ *)

let benches = [ "VectorAdd"; "Reduction"; "cp" ]

let rec scrub = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.map
         (fun (k, v) ->
           if k = "total_ms" || k = "jobs" then (k, Obs.Json.Num 0.0) else (k, scrub v))
         fields)
  | Obs.Json.Arr xs -> Obs.Json.Arr (List.map scrub xs)
  | j -> j

let collect_scrubbed ~jobs =
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Experiments.Sweep.clear_caches ();
  let opts =
    Experiments.Options.with_jobs
      (Experiments.Options.with_benchmarks
         { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
         benches)
      jobs
  in
  let m = Experiments.Run_manifest.collect opts in
  Obs.Json.to_string (scrub (Obs.Manifest.to_json m))

let test_manifest_parity_gcprof_off_and_on () =
  check Alcotest.bool "gc recorder starts off" false (Obs.Gcprof.enabled ());
  let off_serial = collect_scrubbed ~jobs:1 in
  let off_par = collect_scrubbed ~jobs:4 in
  check Alcotest.string "gcprof-off manifests byte-identical at jobs 1 vs 4"
    off_serial off_par;
  Obs.Gcprof.start ();
  let on_serial = collect_scrubbed ~jobs:1 in
  let on_par = collect_scrubbed ~jobs:4 in
  ignore (Obs.Gcprof.stop () : Obs.Gcprof.capture);
  check Alcotest.string "gcprof-on manifest matches gcprof-off" off_serial on_serial;
  check Alcotest.string "gcprof-on parity holds at jobs=4" off_serial on_par

(* --- disabled recorder leaves no trace in reports ------------------- *)

let test_disabled_recorder_reports_no_gc () =
  check Alcotest.bool "gc recorder is off" false (Obs.Gcprof.enabled ());
  let _, report =
    Obs.Engine.profile ~label:"nogc" ~gcprof:false ~jobs:2 (fun () ->
        Util.Pool.parallel_map ~jobs:2 ~label:"nogc.map" alloc_work (List.init 8 Fun.id))
  in
  check Alcotest.bool "no capture" true (report.Obs.Engine.gc = None);
  List.iter
    (fun (reg : Obs.Engine.region) ->
      check Alcotest.int "gc_ns identically zero" 0 reg.Obs.Engine.cats.Obs.Engine.gc_ns)
    report.Obs.Engine.regions;
  check Alcotest.(list string) "report still exact" [] (Obs.Engine.check report);
  (* And the JSON carries no gc object to keep pre-gcprof decoders happy. *)
  check Alcotest.bool "no gc key in the JSON" true
    (Obs.Json.member "gc" (Obs.Engine.to_json report) = None)

let suite =
  [
    Alcotest.test_case "compute+gc = useful exactly" `Quick (isolated test_gc_split_exact);
    Alcotest.test_case "region quick_stat deltas" `Quick (isolated test_region_mem_deltas);
    Alcotest.test_case "lost events tolerated" `Quick (isolated test_lost_events_tolerated);
    Alcotest.test_case "history gc round-trip" `Quick (isolated test_history_gc_roundtrip);
    Alcotest.test_case "trend gates gc share" `Quick (isolated test_trend_gates_gc_share_step);
    Alcotest.test_case "manifest parity with gcprof" `Quick
      (isolated test_manifest_parity_gcprof_off_and_on);
    Alcotest.test_case "disabled recorder is invisible" `Quick
      (isolated test_disabled_recorder_reports_no_gc);
  ]
