(* Domain pool and memo-table tests: ordering, serial/parallel
   equivalence, exception determinism, nesting, and in-flight
   deduplication. *)

let check = Alcotest.check

let squares n = List.init n (fun i -> i * i)

let test_ordering () =
  let input = List.init 100 Fun.id in
  check
    Alcotest.(list int)
    "results in input order" (squares 100)
    (Util.Pool.parallel_map ~jobs:4 (fun i -> i * i) input);
  check Alcotest.(list int) "empty" [] (Util.Pool.parallel_map ~jobs:4 Fun.id []);
  check Alcotest.(list int) "singleton" [ 7 ] (Util.Pool.parallel_map ~jobs:4 Fun.id [ 7 ])

let test_jobs_equivalence () =
  let input = List.init 257 (fun i -> i - 128) in
  let f x = (x * x * x) - (5 * x) in
  let serial = List.map f input in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Printf.sprintf "jobs=%d matches serial" jobs)
        serial
        (Util.Pool.parallel_map ~jobs f input))
    [ 1; 2; 3; 8; 64 ]

let test_exception_propagation () =
  (* A failing element re-raises in the caller... *)
  Alcotest.check_raises "raises" (Failure "boom-7") (fun () ->
      ignore
        (Util.Pool.parallel_map ~jobs:4
           (fun i -> if i = 7 then failwith "boom-7" else i)
           (List.init 20 Fun.id)));
  (* ...and with several failures the smallest input index wins,
     regardless of completion order. *)
  for _ = 1 to 5 do
    Alcotest.check_raises "smallest index deterministically" (Failure "boom-3") (fun () ->
        ignore
          (Util.Pool.parallel_map ~jobs:4
             (fun i ->
               if i >= 3 then failwith (Printf.sprintf "boom-%d" i);
               i)
             (List.init 16 Fun.id)))
  done

let test_parallel_iter () =
  let total = Atomic.make 0 in
  Util.Pool.parallel_iter ~jobs:4
    (fun i -> ignore (Atomic.fetch_and_add total i : int))
    (List.init 101 Fun.id);
  check Alcotest.int "all effects ran" 5050 (Atomic.get total)

let test_nested_map () =
  let input = List.init 6 (fun i -> List.init 10 (fun j -> (10 * i) + j)) in
  let expect = List.map (List.map (fun x -> x + 1)) input in
  check
    Alcotest.(list (list int))
    "nested parallel maps" expect
    (Util.Pool.parallel_map ~jobs:3
       (fun xs -> Util.Pool.parallel_map ~jobs:2 (fun x -> x + 1) xs)
       input)

let test_resolve_jobs () =
  check Alcotest.int "negative clamps to serial" 1 (Util.Pool.resolve_jobs (Some (-3)));
  check Alcotest.int "explicit" 5 (Util.Pool.resolve_jobs (Some 5));
  check Alcotest.int "zero is auto" (Util.Pool.default_jobs ()) (Util.Pool.resolve_jobs (Some 0));
  check Alcotest.int "absent is auto" (Util.Pool.default_jobs ()) (Util.Pool.resolve_jobs None);
  check Alcotest.bool "default_jobs positive" true (Util.Pool.default_jobs () >= 1)

let test_memo_dedup () =
  let memo : (int, int) Util.Memo.t = Util.Memo.create 8 in
  let computed = Atomic.make 0 in
  let get k =
    Util.Memo.find_or_compute memo k (fun () ->
        ignore (Atomic.fetch_and_add computed 1 : int);
        (* Widen the in-flight window so concurrent callers actually
           hit the dedup path. *)
        ignore (Sys.opaque_identity (List.init 1000 Fun.id));
        k * 2)
  in
  (* 64 concurrent lookups of 4 distinct keys: every result right, one
     computation per key. *)
  let results = Util.Pool.parallel_map ~jobs:8 (fun i -> get (i mod 4)) (List.init 64 Fun.id) in
  List.iteri (fun i r -> check Alcotest.int "memoized value" ((i mod 4) * 2) r) results;
  check Alcotest.int "computed once per key" 4 (Atomic.get computed);
  check Alcotest.int "length counts completed" 4 (Util.Memo.length memo);
  check Alcotest.(option int) "find_opt hit" (Some 6) (Util.Memo.find_opt memo 3);
  check Alcotest.(option int) "find_opt miss" None (Util.Memo.find_opt memo 99);
  Util.Memo.reset memo;
  check Alcotest.int "reset empties" 0 (Util.Memo.length memo);
  check Alcotest.int "recomputes after reset" 6 (get 3);
  check Alcotest.int "one more computation" 5 (Atomic.get computed)

let test_memo_failure_not_cached () =
  let memo : (string, int) Util.Memo.t = Util.Memo.create 4 in
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts = 1 then failwith "first attempt fails";
    42
  in
  Alcotest.check_raises "first raises" (Failure "first attempt fails") (fun () ->
      ignore (Util.Memo.find_or_compute memo "k" flaky));
  check Alcotest.(option int) "failure left no entry" None (Util.Memo.find_opt memo "k");
  check Alcotest.int "retry recomputes and caches" 42
    (Util.Memo.find_or_compute memo "k" flaky);
  check Alcotest.int "cached thereafter" 42
    (Util.Memo.find_or_compute memo "k" (fun () -> Alcotest.fail "must not recompute"))

let suite =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "jobs=1 vs jobs=N equivalence" `Quick test_jobs_equivalence;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "parallel_iter" `Quick test_parallel_iter;
    Alcotest.test_case "nested map" `Quick test_nested_map;
    Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
    Alcotest.test_case "memo in-flight dedup" `Quick test_memo_dedup;
    Alcotest.test_case "memo failure not cached" `Quick test_memo_failure_not_cached;
  ]
