(* Tests for Obs.Trend (robust statistics, change-point segmentation,
   verdicts, the CI gate) and for the rfh trend --check exit-code
   contract, driven end-to-end through the built binary.

   The acceptance scenario from the issue is covered twice: a
   synthetic 12-record history with a 2x ns/run regression injected at
   record 8 must fail the gate naming the series and the change-point
   record/rev, and the same history without the injection must pass. *)

let check = Alcotest.check

(* --- Robust statistics -------------------------------------------- *)

let test_median_mad () =
  check (Alcotest.float 1e-9) "median odd" 3.0 (Obs.Trend.median [| 5.0; 1.0; 3.0 |]);
  check (Alcotest.float 1e-9) "median even" 2.5 (Obs.Trend.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check (Alcotest.float 1e-9) "median empty" 0.0 (Obs.Trend.median [||]);
  (* One wild outlier moves neither the median nor the MAD much. *)
  let xs = [| 10.0; 10.0; 11.0; 9.0; 10.0; 1000.0 |] in
  check (Alcotest.float 1e-9) "median shrugs at outlier" 10.0 (Obs.Trend.median xs);
  check Alcotest.bool "mad shrugs at outlier" true (Obs.Trend.mad xs <= 1.0)

let test_rolling_median () =
  let out = Obs.Trend.rolling_median ~window:3 [| 1.0; 100.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "first is itself" 1.0 out.(0);
  check (Alcotest.float 1e-9) "spike smoothed" 2.0 out.(2);
  check (Alcotest.float 1e-9) "tail window" 3.0 out.(4)

let test_sparkline () =
  check Alcotest.string "empty" "" (Obs.Trend.sparkline [||]);
  check Alcotest.string "flat is mid-block" "\xe2\x96\x84\xe2\x96\x84"
    (Obs.Trend.sparkline [| 5.0; 5.0 |]);
  check Alcotest.string "ramp uses low and high blocks" "\xe2\x96\x81\xe2\x96\x88"
    (Obs.Trend.sparkline [| 0.0; 1.0 |])

(* --- Synthetic series --------------------------------------------- *)

(* Deterministic sub-1% jitter so the tests exercise the noise path
   without depending on a PRNG. *)
let jitter = [| 0.2; -0.3; 0.1; -0.1; 0.3; -0.2; 0.0; 0.15; -0.25; 0.05; 0.1; -0.05 |]

let series_of values =
  {
    Obs.Trend.s_name = "test.series";
    s_dir = Obs.Trend.Lower_better;
    s_tol = 0.35;
    s_gated = true;
    points = Array.of_list (List.mapi (fun i v -> (i, v)) values);
  }

let flat_noise = List.init 12 (fun i -> 100.0 +. jitter.(i))

let stepped_2x = List.init 12 (fun i -> (if i < 8 then 100.0 else 200.0) +. jitter.(i))

let recovery = List.init 12 (fun i -> (if i < 8 then 200.0 else 100.0) +. jitter.(i))

let test_flat_is_stable () =
  let a = Obs.Trend.analyze (series_of flat_noise) in
  check Alcotest.(list int) "no change points" [] a.Obs.Trend.a_change_points;
  check Alcotest.string "verdict" "stable" (Obs.Trend.verdict_name a.Obs.Trend.a_verdict)

let test_step_is_regressed_at_8 () =
  let a = Obs.Trend.analyze (series_of stepped_2x) in
  check Alcotest.(list int) "change point at injection index" [ 8 ]
    a.Obs.Trend.a_change_points;
  check Alcotest.string "verdict" "regressed" (Obs.Trend.verdict_name a.Obs.Trend.a_verdict);
  check Alcotest.bool "shift is ~ +100%" true
    (a.Obs.Trend.a_shift > 0.9 && a.Obs.Trend.a_shift < 1.1)

let test_recovery_is_improved () =
  let a = Obs.Trend.analyze (series_of recovery) in
  check Alcotest.(list int) "change point found" [ 8 ] a.Obs.Trend.a_change_points;
  check Alcotest.string "verdict" "improved" (Obs.Trend.verdict_name a.Obs.Trend.a_verdict)

let test_higher_better_flips () =
  let s = { (series_of stepped_2x) with Obs.Trend.s_dir = Obs.Trend.Higher_better } in
  let a = Obs.Trend.analyze s in
  check Alcotest.string "an upward step in IPC is an improvement" "improved"
    (Obs.Trend.verdict_name a.Obs.Trend.a_verdict)

let test_noisy_series () =
  (* Spread ~40% of the median, no sustained level: noisy, not a
     verdict either way. *)
  let values = List.init 12 (fun i -> if i mod 2 = 0 then 60.0 else 140.0) in
  let a = Obs.Trend.analyze (series_of values) in
  check Alcotest.string "verdict" "noisy" (Obs.Trend.verdict_name a.Obs.Trend.a_verdict)

(* --- History -> series -> gate ------------------------------------ *)

let host i =
  {
    Obs.Host.cores = 8;
    os = "Unix";
    ocaml = "5.1.1";
    git_rev = Printf.sprintf "rev%03d" i;
    git_dirty = false;
  }

let record i ~ns =
  {
    Obs.History.timestamp = Printf.sprintf "2026-08-%02dT00:00:00Z" (i + 1);
    source = "perfgate";
    host = host i;
    jobs = 1;
    wall_s = 30.0;
    benches =
      [
        {
          Obs.History.hb_bench = "VectorAdd";
          hb_ipc = 0.25 +. (jitter.(i mod 12) /. 1000.0);
          hb_norm_energy = 0.53;
          hb_stalls = [];
        };
      ];
    perfgate =
      Some
        {
          Obs.History.pg_ns_per_run = ns;
          pg_p90_ns = ns *. 1.2;
          pg_minor_words = 320.0;
          pg_runs = 5;
          pg_promoted_words = None;
          pg_major_words = None;
        };
    engine = None;
    gc = None;
    jobs2_slower = None;
  }

let clean_history = List.mapi (fun i ns -> record i ~ns) flat_noise

let regressed_history = List.mapi (fun i ns -> record i ~ns) stepped_2x

let test_series_extraction () =
  let series = Obs.Trend.series_of_history regressed_history in
  let names = List.map (fun s -> s.Obs.Trend.s_name) series in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " present") true (List.mem expected names))
    [
      "bench.VectorAdd.ipc"; "bench.VectorAdd.norm_energy"; "perfgate.ns_per_run";
      "perfgate.p90_ns"; "perfgate.minor_words"; "wall_s";
    ];
  check Alcotest.bool "no empty series (engine absent)" false
    (List.exists (fun s -> s.Obs.Trend.s_name = "engine.useful") series)

let test_gate_regression_names_series_and_rev () =
  let g = Obs.Trend.gate regressed_history in
  check Alcotest.int "exit 1" 1 g.Obs.Trend.g_exit;
  match
    List.find_opt
      (fun (f : Obs.Trend.failure) -> f.Obs.Trend.f_series = "perfgate.ns_per_run")
      g.Obs.Trend.g_failures
  with
  | None -> Alcotest.fail "ns_per_run regression not reported"
  | Some f ->
    check Alcotest.int "change point at record 8" 8 f.Obs.Trend.f_index;
    check Alcotest.string "offending record's rev" "rev008" f.Obs.Trend.f_rev;
    check Alcotest.string "offending record's source" "perfgate" f.Obs.Trend.f_source;
    check Alcotest.int "offending record's jobs" 1 f.Obs.Trend.f_jobs;
    check Alcotest.bool "before/after medians bracket the step" true
      (f.Obs.Trend.f_before < 110.0 && f.Obs.Trend.f_after > 190.0)

let test_gate_clean_history_passes () =
  let g = Obs.Trend.gate clean_history in
  check Alcotest.int "exit 0" 0 g.Obs.Trend.g_exit;
  check Alcotest.int "no failures" 0 (List.length g.Obs.Trend.g_failures);
  check Alcotest.bool "analyses still produced" true (g.Obs.Trend.g_analyses <> [])

let test_gate_short_history_is_exit_2 () =
  let g = Obs.Trend.gate (List.filteri (fun i _ -> i < 2) clean_history) in
  check Alcotest.int "exit 2" 2 g.Obs.Trend.g_exit;
  (* An ungated series regressing must not fail the gate. *)
  let ungated =
    List.mapi
      (fun i ns -> { (record i ~ns) with Obs.History.perfgate = None; wall_s = ns })
      stepped_2x
  in
  check Alcotest.int "ungated wall_s regression stays exit 0" 0
    (Obs.Trend.gate ungated).Obs.Trend.g_exit

(* Same self-containment contract as the run report: the dashboard must
   open from disk offline, so no scripts and no external fetches; the
   change-point annotations must carry the offending git rev. *)
let test_trend_page_standalone () =
  let g = Obs.Trend.gate regressed_history in
  let html =
    Obs.Html_report.render_trend_page ~history_path:"baselines/history.jsonl"
      ~records:regressed_history ~rejected:1 g
  in
  let has needle =
    let n = String.length needle and len = String.length html in
    let rec go i = i + n <= len && (String.sub html i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "is a complete document" true
    (has "<!DOCTYPE html>" && has "</html>");
  check Alcotest.bool "names the regressed series" true (has "perfgate.ns_per_run");
  check Alcotest.bool "annotates the change-point rev" true (has "rev008");
  check Alcotest.bool "reports skipped lines" true (has "1 undecodable line");
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "no external fetch (%s)" needle) false (has needle))
    [ "http://"; "https://"; "src="; "href="; "<script" ]

(* --- rfh trend --check end-to-end --------------------------------- *)

let rfh_exe = "../bin/rfh.exe"

let write_history path records =
  (try Sys.remove path with Sys_error _ -> ());
  List.iter (fun r -> Obs.History.append ~path r) records

let run_check path =
  Sys.command
    (Printf.sprintf "%s trend --history %s --check > %s 2>&1"
       (Filename.quote rfh_exe) (Filename.quote path)
       (Filename.quote (path ^ ".out")))

let output_of path = In_channel.with_open_text (path ^ ".out") In_channel.input_all

let contains haystack needle =
  let n = String.length needle and len = String.length haystack in
  let rec go i = i + n <= len && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let with_temp_history f () =
  if not (Sys.file_exists rfh_exe) then
    Alcotest.skip ()
  else begin
    let path = Filename.temp_file "trend" ".jsonl" in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove path;
        try Sys.remove (path ^ ".out") with Sys_error _ -> ())
      (fun () -> f path)
  end

let test_cli_check_regression path =
  write_history path regressed_history;
  check Alcotest.int "exit 1 on injected 2x step" 1 (run_check path);
  let out = output_of path in
  check Alcotest.bool "names the offending series" true
    (contains out "perfgate.ns_per_run");
  check Alcotest.bool "names the change-point record" true (contains out "record 8");
  check Alcotest.bool "names the change-point rev" true (contains out "rev008");
  (* The failure line must name the run shape that produced the
     offending record, so a diagnosis is reproducible. *)
  check Alcotest.bool "names the record's source" true (contains out "source perfgate");
  check Alcotest.bool "names the record's jobs" true (contains out "jobs 1")

let test_cli_check_why path =
  write_history path regressed_history;
  let code =
    Sys.command
      (Printf.sprintf "%s trend --history %s --check --why > %s 2>&1"
         (Filename.quote rfh_exe) (Filename.quote path)
         (Filename.quote (path ^ ".out")))
  in
  check Alcotest.int "--why keeps exit 1" 1 code;
  let out = output_of path in
  check Alcotest.bool "diagnoses the offending record pair" true
    (contains out "trend why: record 7 vs 8 (source perfgate, jobs 1)")

let test_cli_check_clean path =
  write_history path clean_history;
  check Alcotest.int "exit 0 without injection" 0 (run_check path)

let test_cli_check_short path =
  write_history path (List.filteri (fun i _ -> i < 2) clean_history);
  check Alcotest.int "exit 2 under 3 records" 2 (run_check path)

let suite =
  [
    Alcotest.test_case "median and MAD" `Quick test_median_mad;
    Alcotest.test_case "rolling median" `Quick test_rolling_median;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "flat+noise -> stable" `Quick test_flat_is_stable;
    Alcotest.test_case "2x step at 8 -> regressed" `Quick test_step_is_regressed_at_8;
    Alcotest.test_case "recovery -> improved" `Quick test_recovery_is_improved;
    Alcotest.test_case "direction flips the verdict" `Quick test_higher_better_flips;
    Alcotest.test_case "high spread -> noisy" `Quick test_noisy_series;
    Alcotest.test_case "series extracted from history" `Quick test_series_extraction;
    Alcotest.test_case "gate names series+record+rev" `Quick
      test_gate_regression_names_series_and_rev;
    Alcotest.test_case "gate passes clean history" `Quick test_gate_clean_history_passes;
    Alcotest.test_case "gate exit 2 on short history" `Quick
      test_gate_short_history_is_exit_2;
    Alcotest.test_case "trend dashboard standalone" `Quick test_trend_page_standalone;
    Alcotest.test_case "rfh trend --check exit 1" `Quick
      (with_temp_history test_cli_check_regression);
    Alcotest.test_case "rfh trend --check --why diagnosis" `Quick
      (with_temp_history test_cli_check_why);
    Alcotest.test_case "rfh trend --check exit 0" `Quick (with_temp_history test_cli_check_clean);
    Alcotest.test_case "rfh trend --check exit 2" `Quick (with_temp_history test_cli_check_short);
  ]
