(* Simulator tests: the control-flow walker, traffic accounting with
   hand-computed expected counts, the value tracer and the timing
   simulator. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

(* --- Cf ----------------------------------------------------------- *)

let loop_kernel trips =
  let b = B.create "loop" in
  let x = B.op0 b Op.Mov () in
  let head = B.here b in
  B.op2_into b Op.Iadd ~dst:x x x;
  let p = B.op1 b Op.Setp x in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop trips);
  let (_ : B.label) = B.here b in
  B.store b Op.St_global ~addr:x ~value:x;
  B.finalize b

let drain cf =
  let rec go acc =
    match Sim.Cf.peek cf with
    | None -> List.rev acc
    | Some i ->
      Sim.Cf.advance cf;
      go (i.Ir.Instr.id :: acc)
  in
  go []

let test_cf_loop_trips () =
  let k = loop_kernel 4 in
  let cf = Sim.Cf.create k ~warp:0 ~seed:1 in
  let stream = drain cf in
  (* mov + 4 * (add, setp, bra) + store = 14 dynamic instructions. *)
  check Alcotest.int "dynamic length" 14 (List.length stream);
  check Alcotest.int "count matches" 14 (Sim.Cf.dynamic_count cf);
  check Alcotest.bool "finished" true (Sim.Cf.finished cf);
  check Alcotest.bool "not capped" false (Sim.Cf.hit_cap cf)

let test_cf_deterministic () =
  let k = loop_kernel 3 in
  let s1 = drain (Sim.Cf.create k ~warp:2 ~seed:9) in
  let s2 = drain (Sim.Cf.create k ~warp:2 ~seed:9) in
  check Alcotest.(list int) "same stream" s1 s2

let test_cf_cap () =
  let k = loop_kernel 1000 in
  let cf = Sim.Cf.create ~max_dynamic:50 k ~warp:0 ~seed:1 in
  ignore (drain cf);
  check Alcotest.bool "capped" true (Sim.Cf.hit_cap cf);
  check Alcotest.int "stopped at cap" 50 (Sim.Cf.dynamic_count cf)

let test_cf_prob_branch_varies_by_warp () =
  let b = B.create "p" in
  let x = B.op0 b Op.Mov () in
  let join = B.new_label b in
  let p = B.op1 b Op.Setp x in
  B.branch b ~pred:p ~target:join (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  ignore (B.op0 b Op.Mov ());
  B.start_block b join;
  B.ret b;
  let k = B.finalize b in
  let lengths =
    List.init 16 (fun w -> List.length (drain (Sim.Cf.create k ~warp:w ~seed:3)))
  in
  (* Some warps take the branch (3 instrs), some fall through (4). *)
  check Alcotest.bool "warps diverge" true
    (List.exists (fun l -> l = 3) lengths && List.exists (fun l -> l = 4) lengths)

let test_cf_always_never () =
  let mk behavior =
    let b = B.create "t" in
    let x = B.op0 b Op.Mov () in
    let skip = B.new_label b in
    let p = B.op1 b Op.Setp x in
    B.branch b ~pred:p ~target:skip behavior;
    let (_ : B.label) = B.here b in
    ignore (B.op0 b Op.Mov ());
    B.start_block b skip;
    B.ret b;
    B.finalize b
  in
  check Alcotest.int "always skips" 3
    (List.length (drain (Sim.Cf.create (mk Ir.Terminator.Always_taken) ~warp:0 ~seed:1)));
  check Alcotest.int "never falls through" 4
    (List.length (drain (Sim.Cf.create (mk Ir.Terminator.Never_taken) ~warp:0 ~seed:1)))

(* --- Traffic: exact baseline counts -------------------------------- *)

let test_traffic_baseline_exact () =
  (* Straight line: mov (0 reads, 1 write), add (2 reads, 1 write),
     store (2 reads).  Per warp: 4 reads, 2 writes. *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op2 b Op.Iadd x x in
  B.store b Op.St_global ~addr:x ~value:y;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let r = Sim.Traffic.run ~warps:4 ctx Sim.Traffic.Baseline in
  check Alcotest.int "reads" 16 (Energy.Counts.total_reads r.Sim.Traffic.counts);
  check Alcotest.int "writes" 8 (Energy.Counts.total_writes r.Sim.Traffic.counts);
  (* The store reads via the shared datapath. *)
  check Alcotest.int "shared reads" 8
    (Energy.Counts.reads_dp r.Sim.Traffic.counts Energy.Model.Mrf Energy.Model.Shared);
  check Alcotest.int "dynamic instrs" 12 r.Sim.Traffic.dynamic_instrs

let test_traffic_sw_counts_match_placement () =
  let b = B.create "t" in
  let a = B.fresh b in
  let v = B.op2 b Op.Iadd a a in
  let u = B.op1 b Op.Mov v in
  B.store b Op.St_global ~addr:a ~value:u;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let config = Alloc.Config.make ~lrf:Alloc.Config.Unified () in
  let placement = Alloc.Allocator.place config ctx in
  let r = Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Sw { config; placement }) in
  let c = r.Sim.Traffic.counts in
  (* v -> LRF (read by mov), u -> ORF or MRF (read by store).  The two
     reads of input a come from the MRF (or one fill + ORF read). *)
  check Alcotest.int "lrf writes" 1 (Energy.Counts.writes c Energy.Model.Lrf);
  check Alcotest.int "lrf reads" 1 (Energy.Counts.reads c Energy.Model.Lrf);
  check Alcotest.int "total reads unchanged" 5 (Energy.Counts.total_reads c)

(* HW RFC: hand-computed hit/miss/writeback behaviour. *)
let test_traffic_hw_exact () =
  (* mov x; mov y; add z = x + y; store x z
     - x: miss-free write to RFC
     - y: write to RFC
     - add reads x, y: both RFC hits; writes z (RFC, 2-entry: evicts x,
       which is still live (the store reads it) -> writeback
     - store reads x (MRF, probe) and z (RFC hit). *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op0 b Op.Mov () in
  let z = B.op2 b Op.Iadd x y in
  B.store b Op.St_global ~addr:x ~value:z;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let r =
    Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:2))
  in
  let c = r.Sim.Traffic.counts in
  check Alcotest.int "rfc writes: x,y,z" 3 (Energy.Counts.writes c Energy.Model.Rfc);
  (* reads: x,y at add (hits) + z at store (hit) + eviction read of x *)
  check Alcotest.int "rfc reads" 4 (Energy.Counts.reads c Energy.Model.Rfc);
  check Alcotest.int "mrf writes: writeback of x" 1 (Energy.Counts.writes c Energy.Model.Mrf);
  check Alcotest.int "mrf reads: x at store" 1 (Energy.Counts.reads c Energy.Model.Mrf);
  check Alcotest.int "probes: store's miss on x" 1 (Energy.Counts.rfc_probes c)

let test_traffic_hw_dead_elision () =
  (* The evicted value is dead: no writeback. *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op0 b Op.Mov () in
  let z = B.op2 b Op.Iadd x y in
  B.store b Op.St_global ~addr:y ~value:z;
  (* x dead after the add *)
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let r =
    Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:2))
  in
  check Alcotest.int "no writebacks" 0
    (Energy.Counts.writes r.Sim.Traffic.counts Energy.Model.Mrf)

let test_traffic_hw_desched_flush () =
  (* A load's consumer deschedules the warp and flushes live values. *)
  let b = B.create "t" in
  let a = B.op0 b Op.Mov () in
  let x = B.op1 b Op.Ld_global a in
  let v = B.op2 b Op.Iadd a a in
  let w = B.op2 b Op.Fadd x v in
  B.store b Op.St_global ~addr:a ~value:w;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let r =
    Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:4))
  in
  check Alcotest.int "one deschedule" 1 r.Sim.Traffic.desched_events;
  (* Flush writes back a (live: read by fadd? no - a is read by store)
     and v (read by fadd after the flush). *)
  check Alcotest.bool "flush writebacks occurred" true
    (Energy.Counts.writes r.Sim.Traffic.counts Energy.Model.Mrf >= 2)

let test_traffic_sw_desched_events () =
  let e = Option.get (Workloads.Registry.find "ScalarProd") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let config = Alloc.Config.make () in
  let placement = Alloc.Allocator.place config ctx in
  let r = Sim.Traffic.run ~warps:2 ctx (Sim.Traffic.Sw { config; placement }) in
  check Alcotest.bool "loads force deschedules" true (r.Sim.Traffic.desched_events > 0)

let test_traffic_deterministic () =
  let e = Option.get (Workloads.Registry.find "Mandelbrot") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let r1 = Sim.Traffic.run ~warps:4 ~seed:7 ctx Sim.Traffic.Baseline in
  let r2 = Sim.Traffic.run ~warps:4 ~seed:7 ctx Sim.Traffic.Baseline in
  check Alcotest.int "same reads" (Energy.Counts.total_reads r1.Sim.Traffic.counts)
    (Energy.Counts.total_reads r2.Sim.Traffic.counts);
  check Alcotest.int "same instrs" r1.Sim.Traffic.dynamic_instrs r2.Sim.Traffic.dynamic_instrs

let test_traffic_per_strand_sums () =
  let e = Option.get (Workloads.Registry.find "MatrixMul") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let r = Sim.Traffic.run ~warps:2 ctx Sim.Traffic.Baseline in
  let sum =
    Array.fold_left
      (fun acc c -> acc + Energy.Counts.total_reads c)
      0 r.Sim.Traffic.per_strand
  in
  check Alcotest.int "per-strand partitions totals" (Energy.Counts.total_reads r.Sim.Traffic.counts) sum

(* --- Value trace --------------------------------------------------- *)

let test_value_trace_exact () =
  (* x read twice, y read once at distance 1, z never read. *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op2 b Op.Iadd x x in
  let _z = B.op1 b Op.Mov y in
  let k = B.finalize b in
  let s = Sim.Value_trace.collect ~warps:1 k in
  check Alcotest.int "3 values" 3 s.Sim.Value_trace.values_produced;
  check Alcotest.int "one read-0" 1 (Util.Stats.hcount s.Sim.Value_trace.read_counts 0);
  check Alcotest.int "one read-1" 1 (Util.Stats.hcount s.Sim.Value_trace.read_counts 1);
  check Alcotest.int "one read-2" 1 (Util.Stats.hcount s.Sim.Value_trace.read_counts 2);
  check Alcotest.int "read-once lifetime 1" 1
    (Util.Stats.hcount s.Sim.Value_trace.lifetimes_read_once 1)

let test_value_trace_merge () =
  let k = loop_kernel 2 in
  let s1 = Sim.Value_trace.collect ~warps:1 k in
  let s2 = Sim.Value_trace.collect ~warps:1 k in
  let m = Sim.Value_trace.merge [ s1; s2 ] in
  check Alcotest.int "values add up" (2 * s1.Sim.Value_trace.values_produced)
    m.Sim.Value_trace.values_produced

(* --- Perf ---------------------------------------------------------- *)

let test_perf_single_warp_latency () =
  (* One warp, dependent chain: cycles must reflect ALU latency. *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op1 b Op.Mov x in
  let z = B.op1 b Op.Mov y in
  B.store b Op.St_global ~addr:z ~value:z;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let r =
    Sim.Perf.run ~warps:1 ~scheduler:Sim.Perf.Single_level ~policy:Sim.Perf.On_dependence ctx
  in
  check Alcotest.int "instructions" 4 r.Sim.Perf.instructions;
  (* 3 dependent ALU ops at 8 cycles each dominate. *)
  check Alcotest.bool "latency-bound" true (r.Sim.Perf.cycles >= 24)

let test_perf_more_warps_help () =
  let e = Option.get (Workloads.Registry.find "VectorAdd") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let ipc n =
    (Sim.Perf.run ~warps:n ~scheduler:Sim.Perf.Single_level ~policy:Sim.Perf.On_dependence ctx)
      .Sim.Perf.ipc
  in
  check Alcotest.bool "8 warps beat 1" true (ipc 8 > ipc 1)

let test_perf_two_level_policies () =
  let e = Option.get (Workloads.Registry.find "MatrixMul") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  List.iter
    (fun policy ->
      let r = Sim.Perf.run ~warps:16 ~scheduler:(Sim.Perf.Two_level 8) ~policy ctx in
      check Alcotest.bool "completes all instructions" true (r.Sim.Perf.instructions > 0);
      check Alcotest.bool "desched happened" true (r.Sim.Perf.desched_events > 0))
    [ Sim.Perf.On_dependence; Sim.Perf.At_strand_boundaries ]

let test_perf_bank_conflicts () =
  (* A dependent chain whose adds read two same-bank registers: with
     a 2-bank MRF, registers 0 and 2 collide, so each link pays an
     extra fetch cycle and the run takes longer than the ideal model. *)
  let b = B.create "t" in
  let r0 = B.op0 b Op.Mov () in
  let r1 = B.op0 b Op.Mov () in
  let r2 = B.op1 b Op.Mov r0 in
  ignore r1;
  let rec chain v n = if n = 0 then v else chain (B.op2 b Op.Iadd r0 (B.op2 b Op.Iadd v r2)) (n - 1) in
  let last = chain r2 6 in
  B.store b Op.St_global ~addr:last ~value:last;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let run banks =
    (Sim.Perf.run ~warps:1 ?mrf_banks:banks ~scheduler:Sim.Perf.Single_level
       ~policy:Sim.Perf.On_dependence ctx)
      .Sim.Perf.cycles
  in
  let ideal = run None in
  let banked = run (Some 2) in
  Alcotest.(check bool) "conflicts add cycles" true (banked > ideal);
  let many_banks = run (Some 1024) in
  Alcotest.(check int) "conflict-free banking = ideal" ideal many_banks

let test_perf_banked_deterministic () =
  (* The banked model is pure accounting over a deterministic schedule:
     same seed, same result — cycles and the whole stall breakdown. *)
  let e = Option.get (Workloads.Registry.find "MatrixMul") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let run () =
    Sim.Perf.run ~warps:8 ~seed:11 ~mrf_banks:2 ~scheduler:(Sim.Perf.Two_level 4)
      ~policy:Sim.Perf.On_dependence ctx
  in
  let a = run () and b = run () in
  check Alcotest.int "cycles deterministic" a.Sim.Perf.cycles b.Sim.Perf.cycles;
  check Alcotest.int "instructions deterministic" a.Sim.Perf.instructions
    b.Sim.Perf.instructions;
  check
    Alcotest.(list (pair string int))
    "stall breakdown deterministic"
    (Sim.Perf.breakdown_fields a.Sim.Perf.stalls)
    (Sim.Perf.breakdown_fields b.Sim.Perf.stalls)

let test_perf_banked_attribution () =
  (* The extra cycles the banked model adds are attributed to the
     dedicated stall cause — never smeared over the dependence causes —
     and the cause cannot fire without banking. *)
  let b = B.create "t" in
  let r0 = B.op0 b Op.Mov () in
  let r2 = B.op1 b Op.Mov r0 in
  let rec chain v n =
    if n = 0 then v else chain (B.op2 b Op.Iadd r0 (B.op2 b Op.Iadd v r2)) (n - 1)
  in
  let last = chain r2 6 in
  B.store b Op.St_global ~addr:last ~value:last;
  let ctx = Alloc.Context.create (B.finalize b) in
  let run banks =
    Sim.Perf.run ~warps:1 ?mrf_banks:banks ~scheduler:Sim.Perf.Single_level
      ~policy:Sim.Perf.On_dependence ctx
  in
  let ideal = run None and banked = run (Some 2) in
  check Alcotest.int "ideal model never blames banking" 0
    ideal.Sim.Perf.stalls.Sim.Perf.bank_conflict_serialization;
  check Alcotest.bool "banked run blames banking" true
    (banked.Sim.Perf.stalls.Sim.Perf.bank_conflict_serialization > 0);
  check Alcotest.int "conflict-free banking never blames banking" 0
    (run (Some 1024)).Sim.Perf.stalls.Sim.Perf.bank_conflict_serialization

let suite =
  [
    Alcotest.test_case "perf bank conflicts" `Quick test_perf_bank_conflicts;
    Alcotest.test_case "perf banked deterministic" `Quick test_perf_banked_deterministic;
    Alcotest.test_case "perf banked attribution" `Quick test_perf_banked_attribution;
    Alcotest.test_case "cf loop trips" `Quick test_cf_loop_trips;
    Alcotest.test_case "cf deterministic" `Quick test_cf_deterministic;
    Alcotest.test_case "cf cap" `Quick test_cf_cap;
    Alcotest.test_case "cf probabilistic divergence" `Quick test_cf_prob_branch_varies_by_warp;
    Alcotest.test_case "cf always/never" `Quick test_cf_always_never;
    Alcotest.test_case "traffic baseline exact" `Quick test_traffic_baseline_exact;
    Alcotest.test_case "traffic sw matches placement" `Quick test_traffic_sw_counts_match_placement;
    Alcotest.test_case "traffic hw exact" `Quick test_traffic_hw_exact;
    Alcotest.test_case "traffic hw dead elision" `Quick test_traffic_hw_dead_elision;
    Alcotest.test_case "traffic hw desched flush" `Quick test_traffic_hw_desched_flush;
    Alcotest.test_case "traffic sw desched events" `Quick test_traffic_sw_desched_events;
    Alcotest.test_case "traffic deterministic" `Quick test_traffic_deterministic;
    Alcotest.test_case "traffic per-strand sums" `Quick test_traffic_per_strand_sums;
    Alcotest.test_case "value trace exact" `Quick test_value_trace_exact;
    Alcotest.test_case "value trace merge" `Quick test_value_trace_merge;
    Alcotest.test_case "perf single warp latency" `Quick test_perf_single_warp_latency;
    Alcotest.test_case "perf more warps help" `Quick test_perf_more_warps_help;
    Alcotest.test_case "perf two-level policies" `Quick test_perf_two_level_policies;
  ]
