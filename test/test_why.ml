(* Tests for the rfh why differential root-cause engine:
   Obs.Explain_diff alignment and loading, Obs.Stall_diff /
   Obs.Rootcause over real collected manifests, and the CLI exit-code
   contract (0 analysis / 1 self-check failure / 2 missing input)
   end-to-end through the built binary.

   The acceptance scenario from the issue is covered both ways:
   flipping exactly one allocation decision between two otherwise
   identical explain streams must rank that move as the top cause, and
   bumping exactly one stall-cause count between two otherwise
   identical manifests must rank that stall cause as the top cause —
   byte-identically across jobs settings. *)

let check = Alcotest.check

let contains haystack needle =
  let n = String.length needle and len = String.length haystack in
  let rec go i = i + n <= len && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* --- Synthetic decisions for Explain_diff ------------------------- *)

let cand level savings verdict = { Obs.Explain.level; savings; verdict }

let dec ?(kernel = "K") ?(reg = "%r1") ?(outcome = Obs.Explain.To_orf { entry = 0; shortened = 0 })
    seq =
  {
    Obs.Explain.seq;
    kernel;
    reg;
    kind = "write_unit";
    strand = 0;
    width = 1;
    first = seq * 3;
    last = (seq * 3) + 2;
    defs = [ seq * 3 ];
    covered = [ ((seq * 3) + 1, 0) ];
    dropped_reads = 0;
    mrf_copy = false;
    candidates =
      [
        cand "lrf" (-1.0) Obs.Explain.Negative_savings;
        cand "orf" 24.0
          (match outcome with
          | Obs.Explain.To_orf _ -> Obs.Explain.Chosen
          | _ -> Obs.Explain.Negative_savings);
      ];
    outcome;
  }

let stream = List.init 6 (fun i -> dec ~reg:(Printf.sprintf "%%r%d" i) i)

let flip_one ds =
  List.mapi
    (fun i (d : Obs.Explain.decision) ->
      if i = 2 then { d with Obs.Explain.outcome = Obs.Explain.To_mrf } else d)
    ds

let flip_names (p : Obs.Explain_diff.pair) =
  List.map Obs.Explain_diff.flip_name p.Obs.Explain_diff.p_flips

let test_align_identical () =
  let d = Obs.Explain_diff.align ~a:stream ~b:stream in
  check Alcotest.int "all aligned" 6 d.Obs.Explain_diff.d_aligned;
  check Alcotest.int "no changed pairs" 0 (List.length d.Obs.Explain_diff.d_pairs);
  check Alcotest.(list string) "self-check passes" [] (Obs.Explain_diff.check d)

let test_align_single_flip () =
  let d = Obs.Explain_diff.align ~a:stream ~b:(flip_one stream) in
  check Alcotest.int "still all aligned" 6 d.Obs.Explain_diff.d_aligned;
  (match d.Obs.Explain_diff.d_pairs with
  | [ p ] ->
    check Alcotest.(list string) "exactly the level flip" [ "moved orf -> mrf" ]
      (flip_names p);
    check Alcotest.string "flipped register" "%r2" p.Obs.Explain_diff.p_key.Obs.Explain_diff.k_reg
  | pairs -> Alcotest.failf "expected exactly 1 changed pair, got %d" (List.length pairs));
  (match d.Obs.Explain_diff.d_kernels with
  | [ k ] -> (
    check Alcotest.int "kernel changed count" 1 k.Obs.Explain_diff.ks_changed;
    match k.Obs.Explain_diff.ks_moves with
    | [ m ] ->
      check Alcotest.string "move from" "orf" m.Obs.Explain_diff.m_from;
      check Alcotest.string "move to" "mrf" m.Obs.Explain_diff.m_to;
      check Alcotest.int "move count" 1 m.Obs.Explain_diff.m_count
    | moves -> Alcotest.failf "expected 1 move bucket, got %d" (List.length moves))
  | ks -> Alcotest.failf "expected 1 kernel, got %d" (List.length ks));
  check Alcotest.(list string) "self-check passes" [] (Obs.Explain_diff.check d)

(* Alignment keys on live-range identity, so input file order must not
   matter — the same guarantee that makes the diff jobs-independent. *)
let test_align_order_independent () =
  let b = flip_one stream in
  let d1 = Obs.Explain_diff.align ~a:stream ~b in
  let d2 = Obs.Explain_diff.align ~a:(List.rev stream) ~b:(List.rev b) in
  let summary d =
    ( d.Obs.Explain_diff.d_aligned,
      List.concat_map flip_names d.Obs.Explain_diff.d_pairs,
      List.map
        (fun (k : Obs.Explain_diff.kernel_stats) ->
          (k.Obs.Explain_diff.ks_kernel, k.Obs.Explain_diff.ks_changed))
        d.Obs.Explain_diff.d_kernels )
  in
  check Alcotest.bool "reversed inputs align identically" true (summary d1 = summary d2)

let test_align_unmatched () =
  let b = List.filteri (fun i _ -> i < 4) stream in
  let d = Obs.Explain_diff.align ~a:stream ~b in
  check Alcotest.int "aligned" 4 d.Obs.Explain_diff.d_aligned;
  check Alcotest.int "only_a" 2 (List.length d.Obs.Explain_diff.d_only_a);
  check Alcotest.int "only_b" 0 (List.length d.Obs.Explain_diff.d_only_b);
  check Alcotest.(list string) "accounting holds" [] (Obs.Explain_diff.check d)

let test_load_jsonl_garbage_tolerant () =
  let path = Filename.temp_file "why" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun (d : Obs.Explain.decision) ->
          output_string oc (Obs.Json.to_string (Obs.Explain.to_json d));
          output_char oc '\n')
        stream;
      output_string oc "this is not json\n";
      output_string oc "{\"ev\":\"wrong-schema\"}\n";
      output_string oc "\n";
      close_out oc;
      match Obs.Explain_diff.load_jsonl ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok (decisions, rejected) ->
        check Alcotest.int "decodable lines loaded" 6 (List.length decisions);
        check Alcotest.int "garbage lines counted, blank skipped" 2 rejected);
  match Obs.Explain_diff.load_jsonl ~path:"/nonexistent/explain.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an Error"

(* --- Rootcause over real manifests -------------------------------- *)

let collect_manifest ?(jobs = 1) () =
  let opts =
    { (Experiments.Options.default ()) with Experiments.Options.warps = 4; seed = 0x5eed }
  in
  let opts = Experiments.Options.with_benchmarks opts [ "mm" ] in
  Experiments.Run_manifest.collect (Experiments.Options.with_jobs opts jobs)

(* Bump the smallest stall cause by +37 warp-cycles: the induced share
   delta dominates every other cause's renormalization shift, so it
   must rank first. *)
let bump_min_stall (m : Obs.Manifest.t) =
  match m.Obs.Manifest.benches with
  | [] -> assert false
  | b :: rest ->
    let victim, _ =
      List.fold_left
        (fun (bc, bn) (c, n) -> if n < bn then (c, n) else (bc, bn))
        ("", max_int) b.Obs.Manifest.stalls
    in
    let stalls =
      List.map (fun (c, n) -> if c = victim then (c, n + 37) else (c, n)) b.Obs.Manifest.stalls
    in
    ({ m with Obs.Manifest.benches = { b with Obs.Manifest.stalls = stalls } :: rest }, victim)

let test_rootcause_identical () =
  let m = collect_manifest () in
  let r = Obs.Rootcause.analyze ~baseline:m ~candidate:m () in
  check Alcotest.int "no causes between identical runs" 0 (List.length r.Obs.Rootcause.r_causes);
  check Alcotest.(list string) "self-check passes" [] (Obs.Rootcause.check r);
  check Alcotest.bool "metric deltas still listed" true (r.Obs.Rootcause.r_metrics <> [])

let test_rootcause_stall_perturbation_top_cause () =
  let m = collect_manifest () in
  let m', victim = bump_min_stall m in
  let r = Obs.Rootcause.analyze ~baseline:m ~candidate:m' () in
  check Alcotest.(list string) "self-check passes" [] (Obs.Rootcause.check r);
  (match Obs.Rootcause.top_cause r with
  | None -> Alcotest.fail "perturbation produced no cause"
  | Some c ->
    check Alcotest.string "top cause is the bumped stall" ("stall " ^ victim)
      c.Obs.Rootcause.c_what;
    check Alcotest.bool "cause is quantified with counts" true
      (contains c.Obs.Rootcause.c_delta "warp-cycles"));
  (* Byte-determinism of the full analysis across repeated runs. *)
  let r2 = Obs.Rootcause.analyze ~baseline:m ~candidate:m' () in
  check Alcotest.string "analysis is byte-deterministic"
    (Obs.Json.to_string (Obs.Rootcause.to_json r))
    (Obs.Json.to_string (Obs.Rootcause.to_json r2));
  check Alcotest.string "ranked table is byte-deterministic" (Obs.Rootcause.to_table r)
    (Obs.Rootcause.to_table r2)

(* Manifest collection is byte-identical at any --jobs, so the ranked
   causes must be too. *)
let test_rootcause_jobs_parity () =
  let base = collect_manifest ~jobs:1 () in
  let c1, _ = bump_min_stall (collect_manifest ~jobs:1 ()) in
  let c4, _ = bump_min_stall (collect_manifest ~jobs:4 ()) in
  let table jobs_manifest =
    Obs.Rootcause.to_table (Obs.Rootcause.analyze ~baseline:base ~candidate:jobs_manifest ())
  in
  check Alcotest.string "jobs 1 vs 4 rank byte-identically" (table c1) (table c4)

let test_rootcause_explain_perturbation_top_cause () =
  let m = collect_manifest () in
  let ed = Obs.Explain_diff.align ~a:stream ~b:(flip_one stream) in
  let r = Obs.Rootcause.analyze ~explain:ed ~baseline:m ~candidate:m () in
  check Alcotest.(list string) "self-check passes" [] (Obs.Rootcause.check r);
  match Obs.Rootcause.top_cause r with
  | None -> Alcotest.fail "flip produced no cause"
  | Some c ->
    check Alcotest.string "top cause is the moved range" "moved orf -> mrf"
      c.Obs.Rootcause.c_what;
    check Alcotest.string "alloc kind" "alloc" (Obs.Rootcause.kind_name c.Obs.Rootcause.c_kind)

let test_stall_diff_invariants () =
  let m = collect_manifest () in
  let m', _ = bump_min_stall m in
  let d = Obs.Stall_diff.diff ~baseline:m ~current:m' in
  check Alcotest.(list string) "invariants hold" [] (Obs.Stall_diff.check d);
  match d.Obs.Stall_diff.s_benches with
  | [ b ] ->
    check Alcotest.int "budget delta is the bump" 37
      (b.Obs.Stall_diff.sb_total_b - b.Obs.Stall_diff.sb_total_a)
  | bs -> Alcotest.failf "expected 1 bench, got %d" (List.length bs)

(* --- rfh why / baseline check --why end-to-end -------------------- *)

let rfh_exe = "../bin/rfh.exe"

let sh fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt

let read_file path = In_channel.with_open_text path In_channel.input_all

let with_temp_dir f () =
  if not (Sys.file_exists rfh_exe) then Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "why" ".d" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir)
      (fun () -> f dir)
  end

let gen_fixtures dir =
  let a_json = Filename.concat dir "a.json" in
  let a_jsonl = Filename.concat dir "a.jsonl" in
  check Alcotest.int "record baseline manifest" 0
    (sh "%s baseline record --warps 4 -b mm --baseline %s > /dev/null" rfh_exe a_json);
  check Alcotest.int "record explain stream" 0
    (sh "%s explain mm --warps 4 --jsonl-out %s > /dev/null" rfh_exe a_jsonl);
  (a_json, a_jsonl)

(* Flip the first ORF placement to MRF — the same single-decision
   perturbation the why-smoke CI target applies with sed. *)
let perturb_explain src dst =
  let text = read_file src in
  let needle = "\"to\":\"orf\"" in
  let idx =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length text then Alcotest.fail "no ORF outcome in stream"
      else if String.sub text i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  let out =
    String.sub text 0 idx ^ "\"to\":\"mrf\""
    ^ String.sub text (idx + String.length needle)
        (String.length text - idx - String.length needle)
  in
  Out_channel.with_open_text dst (fun oc -> Out_channel.output_string oc out)

let test_cli_identical dir =
  let a_json, a_jsonl = gen_fixtures dir in
  let out = Filename.concat dir "out.txt" in
  check Alcotest.int "exit 0 on identical runs" 0
    (sh "%s why %s %s --explain-a %s --explain-b %s > %s 2>&1" rfh_exe a_json a_json a_jsonl
       a_jsonl out);
  check Alcotest.bool "says no causes" true (contains (read_file out) "no causes")

let test_cli_flip_is_top_cause dir =
  let a_json, a_jsonl = gen_fixtures dir in
  let b_jsonl = Filename.concat dir "b.jsonl" in
  perturb_explain a_jsonl b_jsonl;
  let run n =
    let out = Filename.concat dir (Printf.sprintf "out%d.txt" n) in
    let json = Filename.concat dir (Printf.sprintf "why%d.json" n) in
    check Alcotest.int "exit 0" 0
      (sh "%s why %s %s --explain-a %s --explain-b %s --json-out %s > %s 2>&1" rfh_exe a_json
         a_json a_jsonl b_jsonl json out);
    (read_file out, read_file json)
  in
  let out1, json1 = run 1 and out2, json2 = run 2 in
  check Alcotest.bool "names the flipped move as top cause" true
    (contains out1 "top cause" && contains out1 "moved orf -> mrf");
  check Alcotest.bool "json self-check ok" true (contains json1 "\"check_ok\":true");
  check Alcotest.string "json byte-identical across runs" json1 json2;
  (* Strip the differing --json-out path echo lines before comparing. *)
  let strip s =
    String.concat "\n"
      (List.filter (fun l -> not (contains l "why json ->")) (String.split_on_char '\n' s))
  in
  check Alcotest.string "table byte-identical across runs" (strip out1) (strip out2)

let test_cli_report_out dir =
  let a_json, a_jsonl = gen_fixtures dir in
  let b_jsonl = Filename.concat dir "b.jsonl" in
  perturb_explain a_jsonl b_jsonl;
  let html = Filename.concat dir "why.html" in
  check Alcotest.int "exit 0" 0
    (sh "%s why %s %s --explain-a %s --explain-b %s --report-out %s > /dev/null 2>&1" rfh_exe
       a_json a_json a_jsonl b_jsonl html);
  let page = read_file html in
  check Alcotest.bool "complete standalone document" true
    (contains page "<!DOCTYPE html>" && contains page "</html>");
  check Alcotest.bool "renders the ranked cause" true (contains page "moved orf -&gt; mrf");
  check Alcotest.bool "self-check banner" true (contains page "self-check passed");
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "no external fetch (%s)" needle) false
        (contains page needle))
    [ "http://"; "https://"; "src="; "<script" ]

let test_cli_exit_2 dir =
  let a_json, a_jsonl = gen_fixtures dir in
  check Alcotest.int "missing manifest is exit 2" 2
    (sh "%s why %s/nope.json %s > /dev/null 2>&1" rfh_exe dir a_json);
  check Alcotest.int "lone --explain-a is exit 2" 2
    (sh "%s why %s %s --explain-a %s > /dev/null 2>&1" rfh_exe a_json a_json a_jsonl)

let test_cli_garbage_stream dir =
  let a_json, a_jsonl = gen_fixtures dir in
  let b_jsonl = Filename.concat dir "b.jsonl" in
  Out_channel.with_open_text b_jsonl (fun oc ->
      Out_channel.output_string oc (read_file a_jsonl);
      Out_channel.output_string oc "not json at all\n{\"half\":\n");
  let out = Filename.concat dir "out.txt" in
  check Alcotest.int "garbage lines do not fail the analysis" 0
    (sh "%s why %s %s --explain-a %s --explain-b %s > %s 2>&1" rfh_exe a_json a_json a_jsonl
       b_jsonl out);
  let text = read_file out in
  check Alcotest.bool "reports skipped lines" true (contains text "undecodable line");
  check Alcotest.bool "decodable part still aligns clean" true (contains text "no causes")

let test_cli_baseline_check_why dir =
  let a_json, _ = gen_fixtures dir in
  let golden = Filename.concat dir "golden.json" in
  (match Obs.Manifest.read_file ~path:a_json with
  | Error msg -> Alcotest.failf "cannot read fixture manifest: %s" msg
  | Ok m ->
    let m', _ = bump_min_stall m in
    Obs.Manifest.write_file ~path:golden m');
  let out = Filename.concat dir "out.txt" in
  let viol = Filename.concat dir "violations.json" in
  check Alcotest.int "perturbed golden fails with exit 1" 1
    (sh "%s baseline check --warps 4 -b mm --baseline %s --why --json-out %s > %s 2>&1"
       rfh_exe golden viol out);
  let text = read_file out in
  check Alcotest.bool "ranked diagnosis emitted on failure" true
    (contains text "baseline why: top cause" && contains text "stall ");
  let vjson = read_file viol in
  check Alcotest.bool "violations json records the failure" true
    (contains vjson "\"ok\":false" && contains vjson "stalls");
  (* The clean golden must keep exit 0 and write ok:true. *)
  check Alcotest.int "clean golden stays exit 0" 0
    (sh "%s baseline check --warps 4 -b mm --baseline %s --json-out %s > /dev/null 2>&1"
       rfh_exe a_json viol);
  check Alcotest.bool "violations json ok on success" true
    (contains (read_file viol) "\"ok\":true")

let suite =
  [
    Alcotest.test_case "align: identical streams" `Quick test_align_identical;
    Alcotest.test_case "align: single flip classified" `Quick test_align_single_flip;
    Alcotest.test_case "align: input order independent" `Quick test_align_order_independent;
    Alcotest.test_case "align: unmatched accounted" `Quick test_align_unmatched;
    Alcotest.test_case "load_jsonl garbage tolerant" `Quick test_load_jsonl_garbage_tolerant;
    Alcotest.test_case "rootcause: identical runs" `Quick test_rootcause_identical;
    Alcotest.test_case "rootcause: stall bump is top cause" `Quick
      test_rootcause_stall_perturbation_top_cause;
    Alcotest.test_case "rootcause: jobs 1 vs 4 parity" `Quick test_rootcause_jobs_parity;
    Alcotest.test_case "rootcause: decision flip is top cause" `Quick
      test_rootcause_explain_perturbation_top_cause;
    Alcotest.test_case "stall_diff invariants" `Quick test_stall_diff_invariants;
    Alcotest.test_case "rfh why: identical runs" `Quick (with_temp_dir test_cli_identical);
    Alcotest.test_case "rfh why: flip ranked #1, deterministic" `Quick
      (with_temp_dir test_cli_flip_is_top_cause);
    Alcotest.test_case "rfh why: standalone HTML report" `Quick
      (with_temp_dir test_cli_report_out);
    Alcotest.test_case "rfh why: exit 2 contract" `Quick (with_temp_dir test_cli_exit_2);
    Alcotest.test_case "rfh why: garbage-tolerant streams" `Quick
      (with_temp_dir test_cli_garbage_stream);
    Alcotest.test_case "rfh baseline check --why" `Quick
      (with_temp_dir test_cli_baseline_check_why);
  ]
