(* Tests for warp-level pipeline introspection: the stall-cause
   taxonomy (every warp-cycle attributed, exactly), active-set
   residency accounting, the Obs.Timeline interval recorder
   (zero-cost-when-off, deterministic, JSONL round-trippable), and the
   regression gate on the manifest's stall breakdown. *)

let check = Alcotest.check

(* The timeline recorder is global; leave it off for whoever runs
   next. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.Timeline.disable ();
      Obs.Counters.set_enabled false;
      Obs.Counters.reset ();
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let ctx_of name =
  match Workloads.Registry.find name with
  | Some e -> Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel)
  | None -> Alcotest.failf "unknown benchmark %s" name

let benches = [ "VectorAdd"; "MatrixMul" ]

let configs =
  [
    ("single/on-dep", Sim.Perf.Single_level, Sim.Perf.On_dependence);
    ("two-level-4/on-dep", Sim.Perf.Two_level 4, Sim.Perf.On_dependence);
    ("two-level-4/strand", Sim.Perf.Two_level 4, Sim.Perf.At_strand_boundaries);
  ]

(* --- Exactness: every warp-cycle attributed ------------------------ *)

let test_breakdown_sums_exact () =
  List.iter
    (fun bench ->
      let ctx = ctx_of bench in
      List.iter
        (fun (label, scheduler, policy) ->
          List.iter
            (fun mrf_banks ->
              let warps = 8 in
              let r = Sim.Perf.run ~warps ?mrf_banks ~scheduler ~policy ctx in
              let where =
                Printf.sprintf "%s/%s/banks=%s" bench label
                  (match mrf_banks with None -> "-" | Some b -> string_of_int b)
              in
              check Alcotest.int
                (where ^ ": breakdown sums to cycles x warps")
                (r.Sim.Perf.cycles * warps)
                (Sim.Perf.breakdown_total r.Sim.Perf.stalls);
              Array.iter
                (fun (ws : Sim.Perf.warp_stats) ->
                  check Alcotest.int
                    (Printf.sprintf "%s: warp %d sums to cycles" where ws.Sim.Perf.warp)
                    r.Sim.Perf.cycles
                    (Sim.Perf.breakdown_total ws.Sim.Perf.breakdown))
                r.Sim.Perf.per_warp;
              check Alcotest.int
                (where ^ ": issued cycles = instructions")
                r.Sim.Perf.instructions r.Sim.Perf.stalls.Sim.Perf.issued;
              if mrf_banks = None then
                check Alcotest.int
                  (where ^ ": ideal operand fetch never blames banking")
                  0 r.Sim.Perf.stalls.Sim.Perf.bank_conflict_serialization;
              (* Per-warp rows are the total, sliced. *)
              List.iter
                (fun cause ->
                  check Alcotest.int
                    (Printf.sprintf "%s: per-warp %s sums to total" where
                       (Obs.Timeline.state_name cause))
                    (Sim.Perf.breakdown_get r.Sim.Perf.stalls cause)
                    (Array.fold_left
                       (fun acc (ws : Sim.Perf.warp_stats) ->
                         acc + Sim.Perf.breakdown_get ws.Sim.Perf.breakdown cause)
                       0 r.Sim.Perf.per_warp))
                Obs.Timeline.all_states)
            [ None; Some 2 ])
        configs)
    benches

(* --- Residency accounting ------------------------------------------ *)

let test_residency_accounting () =
  let ctx = ctx_of "MatrixMul" in
  let r =
    Sim.Perf.run ~warps:8 ~scheduler:(Sim.Perf.Two_level 4)
      ~policy:Sim.Perf.On_dependence ctx
  in
  let s = r.Sim.Perf.sched in
  check Alcotest.int "every desched event has a cause" r.Sim.Perf.desched_events
    (s.Sim.Perf.desched_long_latency + s.Sim.Perf.desched_strand_boundary
   + s.Sim.Perf.desched_bank_conflict);
  (* Warps enter once initially and once per refill; they leave by
     desched or by finishing, and at most [warps] never leave. *)
  check Alcotest.bool "entries bound exits" true
    (s.Sim.Perf.exits <= s.Sim.Perf.entries && s.Sim.Perf.entries <= s.Sim.Perf.exits + 8);
  check Alcotest.bool "resident cycles bounded by active slots" true
    (s.Sim.Perf.resident_cycles <= 4 * r.Sim.Perf.cycles);
  check Alcotest.bool "mean residency positive" true (Sim.Perf.mean_residency s > 0.0);
  (* The single-level scheduler holds all warps resident for the whole
     run: residency accounting must reproduce that exactly. *)
  let single =
    Sim.Perf.run ~warps:8 ~scheduler:Sim.Perf.Single_level ~policy:Sim.Perf.On_dependence
      ctx
  in
  check Alcotest.int "single-level: entries = warps" 8 single.Sim.Perf.sched.Sim.Perf.entries;
  check Alcotest.int "single-level: no descheds" 0
    (single.Sim.Perf.sched.Sim.Perf.desched_long_latency
    + single.Sim.Perf.sched.Sim.Perf.desched_strand_boundary
    + single.Sim.Perf.sched.Sim.Perf.desched_bank_conflict)

(* --- Recorder neutrality and interval consistency ------------------ *)

let run_recorded ?mrf_banks ~scheduler ~policy ctx =
  let sink, intervals = Obs.Timeline.memory_sink () in
  Obs.Timeline.set_sink sink;
  let r = Sim.Perf.run ~warps:8 ?mrf_banks ~scheduler ~policy ctx in
  Obs.Timeline.disable ();
  (r, intervals ())

let test_recorder_on_off_identity () =
  List.iter
    (fun bench ->
      let ctx = ctx_of bench in
      Obs.Timeline.disable ();
      let off =
        Sim.Perf.run ~warps:8 ~mrf_banks:2 ~scheduler:(Sim.Perf.Two_level 4)
          ~policy:Sim.Perf.On_dependence ctx
      in
      let on, _ =
        run_recorded ~mrf_banks:2 ~scheduler:(Sim.Perf.Two_level 4)
          ~policy:Sim.Perf.On_dependence ctx
      in
      check Alcotest.bool (bench ^ ": recorder does not perturb the result") true (off = on))
    benches

let test_intervals_tile_and_rederive () =
  let ctx = ctx_of "MatrixMul" in
  let r, ivs =
    run_recorded ~mrf_banks:2 ~scheduler:(Sim.Perf.Two_level 4)
      ~policy:Sim.Perf.On_dependence ctx
  in
  check Alcotest.bool "intervals recorded" true (ivs <> []);
  for w = 0 to 7 do
    let wivs = List.filter (fun iv -> iv.Obs.Timeline.warp = w) ivs in
    (* Emission order is warp-ascending then start-ascending, so the
       per-warp sublist is already sorted: check it tiles [0, cycles)
       with no gap, overlap or empty interval. *)
    let rec tiles expected = function
      | [] -> expected = r.Sim.Perf.cycles
      | iv :: tl ->
        iv.Obs.Timeline.start = expected
        && iv.Obs.Timeline.stop > iv.Obs.Timeline.start
        && tiles iv.Obs.Timeline.stop tl
    in
    check Alcotest.bool (Printf.sprintf "warp %d tiles [0, cycles)" w) true (tiles 0 wivs);
    (* Consecutive intervals were merged: neighbours differ in state. *)
    let rec no_adjacent_dup = function
      | a :: (b :: _ as tl) ->
        a.Obs.Timeline.state <> b.Obs.Timeline.state && no_adjacent_dup tl
      | _ -> true
    in
    check Alcotest.bool (Printf.sprintf "warp %d intervals are maximal" w) true
      (no_adjacent_dup wivs);
    List.iter
      (fun cause ->
        check Alcotest.int
          (Printf.sprintf "warp %d: intervals re-derive %s" w (Obs.Timeline.state_name cause))
          (Sim.Perf.breakdown_get r.Sim.Perf.per_warp.(w).Sim.Perf.breakdown cause)
          (List.fold_left
             (fun acc iv ->
               if iv.Obs.Timeline.state = cause then
                 acc + (iv.Obs.Timeline.stop - iv.Obs.Timeline.start)
               else acc)
             0 wivs))
      Obs.Timeline.all_states
  done

let test_interval_stream_deterministic () =
  let ctx = ctx_of "VectorAdd" in
  let run () =
    snd
      (run_recorded ~scheduler:(Sim.Perf.Two_level 4) ~policy:Sim.Perf.On_dependence ctx)
  in
  check Alcotest.bool "two runs emit identical interval streams" true (run () = run ())

let test_disabled_records_nothing () =
  Obs.Timeline.disable ();
  let ctx = ctx_of "VectorAdd" in
  let sink, intervals = Obs.Timeline.memory_sink () in
  (* Sink installed but recorder not enabled: set_sink enables, so
     instead emit directly while disabled. *)
  ignore sink;
  Obs.Timeline.emit
    { Obs.Timeline.warp = 0; state = Obs.Timeline.Issued; start = 0; stop = 1 };
  ignore (Sim.Perf.run ~warps:2 ~scheduler:Sim.Perf.Single_level
            ~policy:Sim.Perf.On_dependence ctx);
  check Alcotest.int "nothing recorded while disabled" 0 (List.length (intervals ()))

(* --- JSONL codec --------------------------------------------------- *)

let test_json_roundtrip () =
  let ctx = ctx_of "VectorAdd" in
  let _, ivs =
    run_recorded ~scheduler:(Sim.Perf.Two_level 4) ~policy:Sim.Perf.On_dependence ctx
  in
  check Alcotest.bool "some intervals recorded" true (ivs <> []);
  List.iter
    (fun iv ->
      let line = Obs.Json.to_string (Obs.Timeline.to_json iv) in
      match Obs.Json.parse line with
      | Error e -> Alcotest.fail e
      | Ok j ->
        (match Obs.Timeline.of_json j with
         | Error e -> Alcotest.fail e
         | Ok iv' ->
           check Alcotest.string "re-encode is byte-identical" line
             (Obs.Json.to_string (Obs.Timeline.to_json iv'))))
    ivs

let test_of_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok j ->
        (match Obs.Timeline.of_json j with
         | Error _ -> ()
         | Ok _ -> Alcotest.failf "accepted %s" s))
    [
      "{}";
      "{\"ev\":\"decision\"}";
      "[1,2]";
      "{\"ev\":\"interval\",\"warp\":0,\"state\":\"nope\",\"start\":0,\"stop\":1}";
      "{\"ev\":\"interval\",\"warp\":0,\"state\":\"issued\",\"start\":5,\"stop\":1}";
      "{\"ev\":\"interval\",\"warp\":\"x\",\"state\":\"issued\",\"start\":0,\"stop\":1}";
    ]

let test_state_names_roundtrip () =
  List.iter
    (fun s ->
      match Obs.Timeline.state_of_name (Obs.Timeline.state_name s) with
      | Some s' -> check Alcotest.bool "name round-trips" true (s = s')
      | None -> Alcotest.failf "state name %s does not decode" (Obs.Timeline.state_name s))
    Obs.Timeline.all_states;
  check Alcotest.int "taxonomy is complete" 7 (List.length Obs.Timeline.all_states)

(* --- Manifest parity (byte-level, across --jobs) -------------------- *)

(* Scrub wall clock and recorded parallelism, as in test_explain.ml. *)
let rec scrub = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.map
         (fun (k, v) ->
           if k = "total_ms" || k = "jobs" then (k, Obs.Json.Num 0.0) else (k, scrub v))
         fields)
  | Obs.Json.Arr xs -> Obs.Json.Arr (List.map scrub xs)
  | j -> j

let collect_scrubbed ~jobs =
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Experiments.Sweep.clear_caches ();
  let opts =
    Experiments.Options.with_jobs
      (Experiments.Options.with_benchmarks
         { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
         benches)
      jobs
  in
  let m = Experiments.Run_manifest.collect opts in
  Obs.Json.to_string (scrub (Obs.Manifest.to_json m))

let test_manifest_bytes_recorder_and_jobs () =
  Obs.Timeline.disable ();
  let off = collect_scrubbed ~jobs:1 in
  let sink, _ = Obs.Timeline.memory_sink () in
  Obs.Timeline.set_sink sink;
  let on = collect_scrubbed ~jobs:1 in
  let on_par = collect_scrubbed ~jobs:4 in
  Obs.Timeline.disable ();
  let off_par = collect_scrubbed ~jobs:4 in
  check Alcotest.string "recorder does not perturb the manifest" off on;
  check Alcotest.string "--jobs parity holds with the recorder on" off on_par;
  check Alcotest.string "--jobs parity holds with the recorder off" off off_par

(* --- Regression gate covers the stall breakdown --------------------- *)

let rec update keys f j =
  match (keys, j) with
  | [], _ -> f j
  | "0" :: rest, Obs.Json.Arr (x :: tl) -> Obs.Json.Arr (update rest f x :: tl)
  | k :: rest, Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.map (fun (key, v) -> if key = k then (key, update rest f v) else (key, v)) fields)
  | _ -> Alcotest.fail "update: path not found"

let bump = function
  | Obs.Json.Num n -> Obs.Json.Num (n +. 1.0)
  | _ -> Alcotest.fail "not a number"

let test_regress_gates_stall_breakdown () =
  let opts =
    Experiments.Options.with_benchmarks
      { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
      benches
  in
  let baseline = Obs.Manifest.to_json (Experiments.Run_manifest.collect opts) in
  let check_trips path expected_path =
    let perturbed = update path bump baseline in
    let r = Obs.Regress.diff_json ~baseline ~current:perturbed () in
    match r.Obs.Regress.violations with
    | [ v ] ->
      check Alcotest.string "names the perturbed field" expected_path v.Obs.Regress.path;
      check Alcotest.string "exact for deterministic counts" "count mismatch"
        v.Obs.Regress.kind
    | vs ->
      Alcotest.failf "%s: expected exactly one violation, got %d" expected_path
        (List.length vs)
  in
  check_trips
    [ "benches"; "0"; "stalls"; "wait_long_latency" ]
    "benches[VectorAdd].stalls.wait_long_latency";
  check_trips
    [ "benches"; "0"; "sched"; "desched_long_latency" ]
    "benches[VectorAdd].sched.desched_long_latency"

let suite =
  [
    Alcotest.test_case "breakdown sums exact" `Quick (isolated test_breakdown_sums_exact);
    Alcotest.test_case "residency accounting" `Quick (isolated test_residency_accounting);
    Alcotest.test_case "recorder on/off identity" `Quick
      (isolated test_recorder_on_off_identity);
    Alcotest.test_case "intervals tile and re-derive breakdown" `Quick
      (isolated test_intervals_tile_and_rederive);
    Alcotest.test_case "interval stream deterministic" `Quick
      (isolated test_interval_stream_deterministic);
    Alcotest.test_case "disabled records nothing" `Quick
      (isolated test_disabled_records_nothing);
    Alcotest.test_case "interval JSON round-trip" `Quick (isolated test_json_roundtrip);
    Alcotest.test_case "interval JSON rejects garbage" `Quick
      (isolated test_of_json_rejects_garbage);
    Alcotest.test_case "state names round-trip" `Quick (isolated test_state_names_roundtrip);
    Alcotest.test_case "manifest bytes: recorder + --jobs parity" `Slow
      (isolated test_manifest_bytes_recorder_and_jobs);
    Alcotest.test_case "regress gates the stall breakdown" `Quick
      (isolated test_regress_gates_stall_breakdown);
  ]
