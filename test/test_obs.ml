(* Tests for the observability subsystem: metrics registry arithmetic,
   span recording and Chrome-trace export, audit event encoding, and
   the zero-cost-when-disabled contract. *)

let check = Alcotest.check

(* Every obs test runs against the global recorders, so leave them
   clean for whoever runs next. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.Audit.disable ();
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

(* --- Metrics ------------------------------------------------------ *)

let test_counter_arithmetic () =
  let r = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:r "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  check Alcotest.int "accumulates" 42 (Obs.Metrics.counter_value c);
  check Alcotest.bool "interned" true (c == Obs.Metrics.counter ~registry:r "test.counter");
  let s = Obs.Metrics.snapshot ~registry:r () in
  check Alcotest.(list (pair string int)) "snapshot" [ ("test.counter", 42) ] s.Obs.Metrics.counters;
  Obs.Metrics.incr ~by:8 c;
  let s' = Obs.Metrics.snapshot ~registry:r () in
  let d = Obs.Metrics.diff s' s in
  check Alcotest.(list (pair string int)) "diff" [ ("test.counter", 8) ] d.Obs.Metrics.counters;
  Obs.Metrics.reset ~registry:r ();
  check Alcotest.int "reset zeroes" 0 (Obs.Metrics.counter_value c);
  check Alcotest.bool "empty after reset" true
    (Obs.Metrics.is_empty (Obs.Metrics.snapshot ~registry:r ()))

let test_histogram_summary () =
  let r = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:r "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0; 100.0 ];
  match (Obs.Metrics.snapshot ~registry:r ()).Obs.Metrics.histograms with
  | [ (name, s) ] ->
    check Alcotest.string "name" "test.hist" name;
    check Alcotest.int "count" 5 s.Obs.Metrics.count;
    check (Alcotest.float 1e-9) "sum" 110.0 s.Obs.Metrics.sum;
    check (Alcotest.float 1e-9) "mean" 22.0 s.Obs.Metrics.mean;
    check (Alcotest.float 1e-9) "min" 1.0 s.Obs.Metrics.min;
    check (Alcotest.float 1e-9) "max" 100.0 s.Obs.Metrics.max;
    check (Alcotest.float 1e-9) "p50" 3.0 s.Obs.Metrics.p50;
    check (Alcotest.float 1e-9) "p95" 100.0 s.Obs.Metrics.p95
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

let test_gauge () =
  let r = Obs.Metrics.create_registry () in
  let g = Obs.Metrics.gauge ~registry:r "test.gauge" in
  Obs.Metrics.set_gauge g 2.5;
  check Alcotest.(list (pair string (float 0.0))) "gauge" [ ("test.gauge", 2.5) ]
    (Obs.Metrics.snapshot ~registry:r ()).Obs.Metrics.gauges

let test_metrics_json () =
  let r = Obs.Metrics.create_registry () in
  Obs.Metrics.incr ~by:7 (Obs.Metrics.counter ~registry:r "a");
  let j = Obs.Metrics.to_json (Obs.Metrics.snapshot ~registry:r ()) in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let v = Option.bind (Obs.Json.member "counters" parsed) (Obs.Json.member "a") in
    check Alcotest.(option int) "counter survives JSON" (Some 7) (Option.bind v Obs.Json.to_int)

(* --- Json --------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a \"quoted\"\nline");
        ("n", Obs.Json.Num 1.5);
        ("i", Obs.Json.int (-42));
        ("b", Obs.Json.Bool true);
        ("z", Obs.Json.Null);
        ("l", Obs.Json.Arr [ Obs.Json.int 1; Obs.Json.int 2 ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok parsed -> check Alcotest.bool "round-trips" true (parsed = j)
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* --- Span / Chrome trace ------------------------------------------ *)

let test_span_disabled_is_free () =
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  let x = Obs.Span.with_span "phase" (fun () -> 17) in
  check Alcotest.int "result passes through" 17 x;
  check Alcotest.int "nothing recorded" 0 (List.length (Obs.Span.spans ()))

let test_span_nesting_chrome_trace () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  let result =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1));
        Obs.Span.with_span "inner" (fun () -> ());
        "done")
  in
  check Alcotest.string "value" "done" result;
  let spans = Obs.Span.spans () in
  check Alcotest.int "three spans" 3 (List.length spans);
  (* Export and validate the Chrome trace shape. *)
  match Obs.Json.parse (Obs.Trace_export.to_string spans) with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    let events =
      Option.value ~default:[] (Option.bind (Obs.Json.member "traceEvents" trace) Obs.Json.to_list)
    in
    let xs =
      List.filter
        (fun e -> Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str = Some "X")
        events
    in
    check Alcotest.int "one complete event per span" 3 (List.length xs);
    let field name conv e = Option.bind (Obs.Json.member name e) conv in
    List.iter
      (fun e ->
        check Alcotest.bool "has name" true (field "name" Obs.Json.to_str e <> None);
        let ts = field "ts" Obs.Json.to_num e and dur = field "dur" Obs.Json.to_num e in
        check Alcotest.bool "has numeric ts" true (ts <> None);
        check Alcotest.bool "has numeric dur" true (dur <> None);
        check Alcotest.bool "ts >= 0" true (Option.get ts >= 0.0);
        check Alcotest.bool "dur >= 0" true (Option.get dur >= 0.0))
      xs;
    (* The inner spans must nest inside the outer one. *)
    let bounds name =
      List.filter_map
        (fun e ->
          if field "name" Obs.Json.to_str e = Some name then
            Some (Option.get (field "ts" Obs.Json.to_num e), Option.get (field "dur" Obs.Json.to_num e))
          else None)
        xs
    in
    let outer_ts, outer_dur = List.hd (bounds "outer") in
    List.iter
      (fun (ts, dur) ->
        check Alcotest.bool "inner starts after outer" true (ts >= outer_ts);
        check Alcotest.bool "inner ends before outer" true
          (ts +. dur <= outer_ts +. outer_dur +. 1e-3))
      (bounds "inner");
    (* Depths recorded: outer at 0, inners at 1. *)
    let depths =
      List.filter_map
        (fun (s : Obs.Span.span) -> Some (s.Obs.Span.name, s.Obs.Span.depth))
        spans
    in
    check Alcotest.bool "outer depth 0" true (List.mem ("outer", 0) depths);
    check Alcotest.bool "inner depth 1" true (List.mem ("inner", 1) depths)

let test_span_survives_exception () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  (try Obs.Span.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  let recorded = Obs.Span.spans () in
  check Alcotest.int "span recorded despite raise" 1 (List.length recorded);
  (* Depth restored: a following span sits at depth 0 again. *)
  Obs.Span.with_span "after" (fun () -> ());
  let after = List.find (fun (s : Obs.Span.span) -> s.Obs.Span.name = "after") (Obs.Span.spans ()) in
  check Alcotest.int "depth restored" 0 after.Obs.Span.depth

(* --- Audit -------------------------------------------------------- *)

let sample_events =
  [
    Obs.Audit.Alloc
      {
        reg = "%r7";
        kind = Obs.Audit.Write_unit;
        strand = 2;
        level = Obs.Audit.Lrf;
        slot = 1;
        first = 10;
        last = 14;
        reads = 3;
        savings = 27.5;
        partial = false;
        mrf_copy = true;
      };
    Obs.Audit.Alloc
      {
        reg = "%r9";
        kind = Obs.Audit.Read_unit;
        strand = 0;
        level = Obs.Audit.Orf;
        slot = 2;
        first = 3;
        last = 9;
        reads = 2;
        savings = 4.25;
        partial = true;
        mrf_copy = true;
      };
    Obs.Audit.Place { warp = 3; instr = 12; level = Obs.Audit.Orf };
    Obs.Audit.Fill { warp = 1; instr = 4; pos = 0; entry = 2 };
    Obs.Audit.Evict { warp = 0; instr = 9; level = Obs.Audit.Rfc; writeback = true };
    Obs.Audit.Strand_boundary { instr = 17; strand = 4 };
    Obs.Audit.Desched { warp = 5; instr = 21; cause = Obs.Audit.Sw_boundary };
    Obs.Audit.Desched { warp = 6; instr = 22; cause = Obs.Audit.Scheduler };
  ]

let test_audit_jsonl_roundtrip () =
  (* Serialize as JSONL (via a sink into a buffer), parse each line
     back, decode, compare. *)
  let path = Filename.temp_file "rfh_audit" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter (Obs.Audit.jsonl_sink oc) sample_events;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check Alcotest.int "one line per event" (List.length sample_events) (List.length lines);
      let decoded =
        List.map
          (fun line ->
            match Obs.Json.parse line with
            | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
            | Ok j ->
              (match Obs.Audit.of_json j with
               | Ok ev -> ev
               | Error e -> Alcotest.failf "undecodable event %S: %s" line e))
          lines
      in
      check Alcotest.bool "round-trips" true (decoded = sample_events))

let test_audit_of_json_rejects () =
  List.iter
    (fun s ->
      let j = Result.get_ok (Obs.Json.parse s) in
      match Obs.Audit.of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" s
      | Error _ -> ())
    [
      {|{"ev":"bogus"}|};
      {|{"ev":"place","warp":0}|};
      {|{"ev":"place","warp":0,"instr":1,"level":"l2"}|};
      {|{"warp":0,"instr":1,"level":"lrf"}|};
    ]

let vectoradd_ctx () =
  let e = Option.get (Workloads.Registry.find "VectorAdd") in
  Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel)

let run_pipeline () =
  let ctx = vectoradd_ctx () in
  let config = Alloc.Config.make () in
  let placement = Alloc.Allocator.place config ctx in
  let sw = Sim.Traffic.run ~warps:4 ctx (Sim.Traffic.Sw { config; placement }) in
  let baseline = Sim.Traffic.run ~warps:4 ctx Sim.Traffic.Baseline in
  (sw, baseline)

let test_noop_sink_records_nothing () =
  let sink, events = Obs.Audit.memory_sink () in
  Obs.Audit.set_sink sink;
  Obs.Audit.set_enabled false;
  let _ = run_pipeline () in
  check Alcotest.int "no events recorded when disabled" 0 (List.length (events ()));
  (* emit itself is a no-op while disabled. *)
  Obs.Audit.emit (Obs.Audit.Place { warp = 0; instr = 0; level = Obs.Audit.Mrf });
  check Alcotest.int "emit is a no-op" 0 (List.length (events ()))

let test_place_events_match_counts () =
  let sink, events = Obs.Audit.memory_sink () in
  Obs.Audit.set_sink sink;
  let sw, baseline = run_pipeline () in
  Obs.Audit.disable ();
  let expected = Energy.Counts.create () in
  Energy.Counts.merge_into ~dst:expected sw.Sim.Traffic.counts;
  Energy.Counts.merge_into ~dst:expected baseline.Sim.Traffic.counts;
  let placed level =
    List.length
      (List.filter
         (function Obs.Audit.Place { level = l; _ } -> l = level | _ -> false)
         (events ()))
  in
  check Alcotest.int "LRF placements = LRF writes" (Energy.Counts.writes expected Energy.Model.Lrf)
    (placed Obs.Audit.Lrf);
  check Alcotest.int "ORF placements = ORF writes" (Energy.Counts.writes expected Energy.Model.Orf)
    (placed Obs.Audit.Orf);
  check Alcotest.int "MRF placements = MRF writes" (Energy.Counts.writes expected Energy.Model.Mrf)
    (placed Obs.Audit.Mrf);
  check Alcotest.bool "some placements happened" true (placed Obs.Audit.Mrf > 0)

let test_audit_events_from_allocator () =
  let sink, events = Obs.Audit.memory_sink () in
  Obs.Audit.set_sink sink;
  let ctx = vectoradd_ctx () in
  let _ = Alloc.Allocator.run (Alloc.Config.make ()) ctx in
  Obs.Audit.disable ();
  let allocs =
    List.filter (function Obs.Audit.Alloc _ -> true | _ -> false) (events ())
  in
  check Alcotest.bool "allocator reports decisions" true (List.length allocs > 0)

(* --- p99 ---------------------------------------------------------- *)

let test_histogram_p99 () =
  let r = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:r "test.p99" in
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  match (Obs.Metrics.snapshot ~registry:r ()).Obs.Metrics.histograms with
  | [ (_, s) ] ->
    check Alcotest.bool "p50 <= p95" true (s.Obs.Metrics.p50 <= s.Obs.Metrics.p95);
    check Alcotest.bool "p95 <= p99" true (s.Obs.Metrics.p95 <= s.Obs.Metrics.p99);
    check Alcotest.bool "p99 <= max" true (s.Obs.Metrics.p99 <= s.Obs.Metrics.max);
    check Alcotest.bool "p99 in the tail" true (s.Obs.Metrics.p99 >= 95.0);
    (* p99 must survive the JSON snapshot codec too. *)
    let j = Obs.Metrics.to_json (Obs.Metrics.snapshot ~registry:r ()) in
    let p99 =
      Option.bind (Obs.Json.member "histograms" j) (Obs.Json.member "test.p99")
      |> Fun.flip Option.bind (Obs.Json.member "p99")
      |> Fun.flip Option.bind Obs.Json.to_num
    in
    check Alcotest.(option (float 1e-9)) "p99 in JSON" (Some s.Obs.Metrics.p99) p99
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

(* --- Prng-driven audit round-trip --------------------------------- *)

(* Random events covering every variant and every enum value; floats
   are dyadic rationals so the JSON number printer is exact. *)
let random_event g =
  let levels = [| Obs.Audit.Lrf; Obs.Audit.Orf; Obs.Audit.Mrf; Obs.Audit.Rfc |] in
  let causes =
    [| Obs.Audit.Sw_boundary; Obs.Audit.Hw_dependence; Obs.Audit.Bank_conflict;
       Obs.Audit.Scheduler |]
  in
  let kinds = [| Obs.Audit.Write_unit; Obs.Audit.Read_unit |] in
  match Util.Prng.int g 6 with
  | 0 ->
    let first = Util.Prng.int g 1000 in
    Obs.Audit.Alloc
      {
        reg = Printf.sprintf "%%r%d" (Util.Prng.int g 64);
        kind = Util.Prng.pick g kinds;
        strand = Util.Prng.int g 16;
        level = (if Util.Prng.bool g then Obs.Audit.Lrf else Obs.Audit.Orf);
        slot = Util.Prng.int g 8;
        first;
        last = first + Util.Prng.int g 50;
        reads = Util.Prng.int g 10;
        savings = float_of_int (Util.Prng.int g 100_000) /. 16.0;
        partial = Util.Prng.bool g;
        mrf_copy = Util.Prng.bool g;
      }
  | 1 ->
    Obs.Audit.Place
      { warp = Util.Prng.int g 32; instr = Util.Prng.int g 2000; level = Util.Prng.pick g levels }
  | 2 ->
    Obs.Audit.Fill
      {
        warp = Util.Prng.int g 32;
        instr = Util.Prng.int g 2000;
        pos = Util.Prng.int g 3;
        entry = Util.Prng.int g 8;
      }
  | 3 ->
    Obs.Audit.Evict
      {
        warp = Util.Prng.int g 32;
        instr = Util.Prng.int g 2000;
        level = Util.Prng.pick g levels;
        writeback = Util.Prng.bool g;
      }
  | 4 -> Obs.Audit.Strand_boundary { instr = Util.Prng.int g 2000; strand = Util.Prng.int g 16 }
  | _ ->
    Obs.Audit.Desched
      { warp = Util.Prng.int g 32; instr = Util.Prng.int g 2000; cause = Util.Prng.pick g causes }

let test_audit_prng_roundtrip () =
  let g = Util.Prng.create 0xA0D17 in
  for _ = 1 to 500 do
    let ev = random_event g in
    let encoded = Obs.Json.to_string (Obs.Audit.to_json ev) in
    match Obs.Json.parse encoded with
    | Error e -> Alcotest.failf "unparseable %s: %s" encoded e
    | Ok j ->
      (match Obs.Audit.of_json j with
       | Error e -> Alcotest.failf "undecodable %s: %s" encoded e
       | Ok ev' ->
         if ev' <> ev then Alcotest.failf "round-trip changed event: %s" encoded)
  done

(* --- Per-domain trace tracks -------------------------------------- *)

let test_trace_domain_tids () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Obs.Span.with_span "main-work" (fun () -> ignore (Sys.opaque_identity 1));
  let workers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            Obs.Span.with_span (Printf.sprintf "worker-%d" i) (fun () ->
                ignore (Sys.opaque_identity i))))
  in
  List.iter Domain.join workers;
  let spans = Obs.Span.spans () in
  let domains = List.sort_uniq compare (List.map (fun s -> s.Obs.Span.domain) spans) in
  check Alcotest.bool "spans from several domains" true (List.length domains >= 2);
  match Obs.Json.parse (Obs.Trace_export.to_string spans) with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    let events =
      Option.value ~default:[]
        (Option.bind (Obs.Json.member "traceEvents" trace) Obs.Json.to_list)
    in
    let of_phase p =
      List.filter (fun e -> Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str = Some p) events
    in
    let tids_of evs =
      List.sort_uniq compare
        (List.filter_map (fun e -> Option.bind (Obs.Json.member "tid" e) Obs.Json.to_int) evs)
    in
    let x_tids = tids_of (of_phase "X") in
    check Alcotest.bool "distinct tid tracks" true (List.length x_tids >= 2);
    check Alcotest.(list int) "X tids match span domains" domains x_tids;
    (* One thread_name metadata row per domain. *)
    let thread_names =
      List.filter
        (fun e -> Option.bind (Obs.Json.member "name" e) Obs.Json.to_str = Some "thread_name")
        (of_phase "M")
    in
    check Alcotest.(list int) "metadata row per domain" domains (tids_of thread_names)

(* --- Manifest / regression gate ----------------------------------- *)

let collect_small () =
  let opts =
    Experiments.Options.with_benchmarks
      { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
      [ "VectorAdd"; "MatrixMul" ]
  in
  Experiments.Run_manifest.collect opts

let test_manifest_byte_stability () =
  let m = collect_small () in
  let once = Obs.Manifest.to_string m in
  match Obs.Manifest.of_string once with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    check Alcotest.string "encode/decode/re-encode is byte-stable" once
      (Obs.Manifest.to_string decoded);
    check Alcotest.int "benches survive" 2 (List.length decoded.Obs.Manifest.benches)

let test_regress_self_diff_ok () =
  let m = collect_small () in
  let r = Obs.Regress.diff ~baseline:m ~current:m () in
  check Alcotest.bool "self-diff is clean" true (Obs.Regress.ok r);
  check Alcotest.bool "values were compared" true (r.Obs.Regress.compared > 100)

(* Structural update along an object path; "0" descends into the first
   array element. *)
let rec update keys f j =
  match (keys, j) with
  | [], _ -> f j
  | "0" :: rest, Obs.Json.Arr (x :: tl) -> Obs.Json.Arr (update rest f x :: tl)
  | k :: rest, Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.map (fun (key, v) -> if key = k then (key, update rest f v) else (key, v)) fields)
  | _ -> Alcotest.fail "update: path not found"

let test_regress_detects_perturbed_count () =
  let m = collect_small () in
  let baseline = Obs.Manifest.to_json m in
  let perturbed =
    update
      [ "benches"; "0"; "counts"; "mrf"; "writes"; "private" ]
      (function Obs.Json.Num n -> Obs.Json.Num (n +. 1.0) | _ -> Alcotest.fail "not a number")
      baseline
  in
  let r = Obs.Regress.diff_json ~baseline ~current:perturbed () in
  (match r.Obs.Regress.violations with
   | [ v ] ->
     check Alcotest.string "names the perturbed field"
       "benches[VectorAdd].counts.mrf.writes.private" v.Obs.Regress.path;
     check Alcotest.string "exact for deterministic counts" "count mismatch" v.Obs.Regress.kind
   | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* options.jobs is how the run was parallelised, never a regression. *)
  let jobs_differ =
    update [ "options"; "jobs" ] (fun _ -> Obs.Json.int 4) baseline
  in
  check Alcotest.bool "options.jobs ignored" true
    (Obs.Regress.ok (Obs.Regress.diff_json ~baseline ~current:jobs_differ ()))

(* The meta section is provenance, not results: a baseline recorded on
   one host must check cleanly on a completely different one, and
   against a pre-v3 manifest that has no meta section at all. *)
let test_regress_ignores_meta () =
  let m = collect_small () in
  let baseline = Obs.Manifest.to_json m in
  let other_host =
    update [ "meta" ]
      (fun _ ->
        Obs.Json.Obj
          [
            ("cores", Obs.Json.int 128);
            ("os", Obs.Json.Str "Win32");
            ("ocaml", Obs.Json.Str "9.9.9");
            ("git_rev", Obs.Json.Str "deadbeef");
            ("git_dirty", Obs.Json.Bool true);
          ])
      baseline
  in
  check Alcotest.bool "differing host fingerprint checks clean" true
    (Obs.Regress.ok (Obs.Regress.diff_json ~baseline ~current:other_host ()));
  let no_meta =
    match baseline with
    | Obs.Json.Obj fields -> Obs.Json.Obj (List.filter (fun (k, _) -> k <> "meta") fields)
    | _ -> Alcotest.fail "manifest JSON is not an object"
  in
  check Alcotest.bool "manifest without meta checks clean" true
    (Obs.Regress.ok (Obs.Regress.diff_json ~baseline ~current:no_meta ()));
  check Alcotest.bool "extra meta on current side checks clean" true
    (Obs.Regress.ok (Obs.Regress.diff_json ~baseline:no_meta ~current:baseline ()))

let test_regress_timing_tolerance () =
  let m = collect_small () in
  let baseline = Obs.Manifest.to_json m in
  let slower =
    update
      [ "phases"; "0"; "total_ms" ]
      (function Obs.Json.Num n -> Obs.Json.Num ((n +. 1.0) *. 10.0) | v -> v)
      baseline
  in
  check Alcotest.bool "timings skipped by default" true
    (Obs.Regress.ok (Obs.Regress.diff_json ~baseline ~current:slower ()));
  check Alcotest.bool "timings gated by --timing-tol" false
    (Obs.Regress.ok (Obs.Regress.diff_json ~timing_tol:0.5 ~baseline ~current:slower ()))

let test_energy_counts_json_roundtrip () =
  let c = Energy.Counts.create () in
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~n:7 ();
  Energy.Counts.add_write c Energy.Model.Orf Energy.Model.Shared ~n:3 ();
  Energy.Counts.add_write c Energy.Model.Lrf Energy.Model.Private ~n:11 ();
  Energy.Counts.add_rfc_probe c ~n:5 ();
  let j = Energy.Counts.to_json c in
  match Energy.Counts.of_json j with
  | Error e -> Alcotest.fail e
  | Ok c' ->
    check Alcotest.int "mrf private reads" 7
      (Energy.Counts.reads_dp c' Energy.Model.Mrf Energy.Model.Private);
    check Alcotest.int "orf shared writes" 3
      (Energy.Counts.writes_dp c' Energy.Model.Orf Energy.Model.Shared);
    check Alcotest.int "lrf writes" 11 (Energy.Counts.writes c' Energy.Model.Lrf);
    check Alcotest.int "probes" 5 (Energy.Counts.rfc_probes c');
    check Alcotest.string "re-encode is byte-identical" (Obs.Json.to_string j)
      (Obs.Json.to_string (Energy.Counts.to_json c'))

let test_html_report_standalone () =
  let m = collect_small () in
  let html = Obs.Html_report.render m in
  let contains needle =
    let n = String.length needle and len = String.length html in
    let rec go i = i + n <= len && (String.sub html i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "is a complete document" true
    (contains "<!DOCTYPE html>" && contains "</html>");
  check Alcotest.bool "mentions each benchmark" true
    (contains "VectorAdd" && contains "MatrixMul");
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "no external fetch (%s)" needle) false
        (contains needle))
    [ "http://"; "https://"; "src="; "href="; "<script" ]

let suite =
  [
    Alcotest.test_case "counter arithmetic" `Quick (isolated test_counter_arithmetic);
    Alcotest.test_case "histogram summary" `Quick (isolated test_histogram_summary);
    Alcotest.test_case "gauge" `Quick (isolated test_gauge);
    Alcotest.test_case "metrics to JSON" `Quick (isolated test_metrics_json);
    Alcotest.test_case "json round-trip" `Quick (isolated test_json_roundtrip);
    Alcotest.test_case "json rejects garbage" `Quick (isolated test_json_rejects_garbage);
    Alcotest.test_case "disabled spans are free" `Quick (isolated test_span_disabled_is_free);
    Alcotest.test_case "span nesting -> Chrome trace" `Quick (isolated test_span_nesting_chrome_trace);
    Alcotest.test_case "span survives exception" `Quick (isolated test_span_survives_exception);
    Alcotest.test_case "audit JSONL round-trip" `Quick (isolated test_audit_jsonl_roundtrip);
    Alcotest.test_case "audit rejects bad JSON" `Quick (isolated test_audit_of_json_rejects);
    Alcotest.test_case "no-op sink records nothing" `Quick (isolated test_noop_sink_records_nothing);
    Alcotest.test_case "place events match Energy.Counts" `Quick (isolated test_place_events_match_counts);
    Alcotest.test_case "allocator reports into audit" `Quick (isolated test_audit_events_from_allocator);
    Alcotest.test_case "histogram p99" `Quick (isolated test_histogram_p99);
    Alcotest.test_case "audit Prng round-trip" `Quick (isolated test_audit_prng_roundtrip);
    Alcotest.test_case "per-domain trace tids" `Quick (isolated test_trace_domain_tids);
    Alcotest.test_case "manifest byte-stability" `Quick (isolated test_manifest_byte_stability);
    Alcotest.test_case "regress self-diff ok" `Quick (isolated test_regress_self_diff_ok);
    Alcotest.test_case "regress flags perturbed count" `Quick (isolated test_regress_detects_perturbed_count);
    Alcotest.test_case "regress ignores host meta" `Quick (isolated test_regress_ignores_meta);
    Alcotest.test_case "regress timing tolerance" `Quick (isolated test_regress_timing_tolerance);
    Alcotest.test_case "energy counts JSON round-trip" `Quick (isolated test_energy_counts_json_roundtrip);
    Alcotest.test_case "html report standalone" `Quick (isolated test_html_report_standalone);
  ]
