(* Tests for the observability subsystem: metrics registry arithmetic,
   span recording and Chrome-trace export, audit event encoding, and
   the zero-cost-when-disabled contract. *)

let check = Alcotest.check

(* Every obs test runs against the global recorders, so leave them
   clean for whoever runs next. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.Audit.disable ();
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

(* --- Metrics ------------------------------------------------------ *)

let test_counter_arithmetic () =
  let r = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:r "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  check Alcotest.int "accumulates" 42 (Obs.Metrics.counter_value c);
  check Alcotest.bool "interned" true (c == Obs.Metrics.counter ~registry:r "test.counter");
  let s = Obs.Metrics.snapshot ~registry:r () in
  check Alcotest.(list (pair string int)) "snapshot" [ ("test.counter", 42) ] s.Obs.Metrics.counters;
  Obs.Metrics.incr ~by:8 c;
  let s' = Obs.Metrics.snapshot ~registry:r () in
  let d = Obs.Metrics.diff s' s in
  check Alcotest.(list (pair string int)) "diff" [ ("test.counter", 8) ] d.Obs.Metrics.counters;
  Obs.Metrics.reset ~registry:r ();
  check Alcotest.int "reset zeroes" 0 (Obs.Metrics.counter_value c);
  check Alcotest.bool "empty after reset" true
    (Obs.Metrics.is_empty (Obs.Metrics.snapshot ~registry:r ()))

let test_histogram_summary () =
  let r = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:r "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0; 100.0 ];
  match (Obs.Metrics.snapshot ~registry:r ()).Obs.Metrics.histograms with
  | [ (name, s) ] ->
    check Alcotest.string "name" "test.hist" name;
    check Alcotest.int "count" 5 s.Obs.Metrics.count;
    check (Alcotest.float 1e-9) "sum" 110.0 s.Obs.Metrics.sum;
    check (Alcotest.float 1e-9) "mean" 22.0 s.Obs.Metrics.mean;
    check (Alcotest.float 1e-9) "min" 1.0 s.Obs.Metrics.min;
    check (Alcotest.float 1e-9) "max" 100.0 s.Obs.Metrics.max;
    check (Alcotest.float 1e-9) "p50" 3.0 s.Obs.Metrics.p50;
    check (Alcotest.float 1e-9) "p95" 100.0 s.Obs.Metrics.p95
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

let test_gauge () =
  let r = Obs.Metrics.create_registry () in
  let g = Obs.Metrics.gauge ~registry:r "test.gauge" in
  Obs.Metrics.set_gauge g 2.5;
  check Alcotest.(list (pair string (float 0.0))) "gauge" [ ("test.gauge", 2.5) ]
    (Obs.Metrics.snapshot ~registry:r ()).Obs.Metrics.gauges

let test_metrics_json () =
  let r = Obs.Metrics.create_registry () in
  Obs.Metrics.incr ~by:7 (Obs.Metrics.counter ~registry:r "a");
  let j = Obs.Metrics.to_json (Obs.Metrics.snapshot ~registry:r ()) in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let v = Option.bind (Obs.Json.member "counters" parsed) (Obs.Json.member "a") in
    check Alcotest.(option int) "counter survives JSON" (Some 7) (Option.bind v Obs.Json.to_int)

(* --- Json --------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a \"quoted\"\nline");
        ("n", Obs.Json.Num 1.5);
        ("i", Obs.Json.int (-42));
        ("b", Obs.Json.Bool true);
        ("z", Obs.Json.Null);
        ("l", Obs.Json.Arr [ Obs.Json.int 1; Obs.Json.int 2 ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok parsed -> check Alcotest.bool "round-trips" true (parsed = j)
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* --- Span / Chrome trace ------------------------------------------ *)

let test_span_disabled_is_free () =
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  let x = Obs.Span.with_span "phase" (fun () -> 17) in
  check Alcotest.int "result passes through" 17 x;
  check Alcotest.int "nothing recorded" 0 (List.length (Obs.Span.spans ()))

let test_span_nesting_chrome_trace () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  let result =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1));
        Obs.Span.with_span "inner" (fun () -> ());
        "done")
  in
  check Alcotest.string "value" "done" result;
  let spans = Obs.Span.spans () in
  check Alcotest.int "three spans" 3 (List.length spans);
  (* Export and validate the Chrome trace shape. *)
  match Obs.Json.parse (Obs.Trace_export.to_string spans) with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    let events =
      Option.value ~default:[] (Option.bind (Obs.Json.member "traceEvents" trace) Obs.Json.to_list)
    in
    let xs =
      List.filter
        (fun e -> Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str = Some "X")
        events
    in
    check Alcotest.int "one complete event per span" 3 (List.length xs);
    let field name conv e = Option.bind (Obs.Json.member name e) conv in
    List.iter
      (fun e ->
        check Alcotest.bool "has name" true (field "name" Obs.Json.to_str e <> None);
        let ts = field "ts" Obs.Json.to_num e and dur = field "dur" Obs.Json.to_num e in
        check Alcotest.bool "has numeric ts" true (ts <> None);
        check Alcotest.bool "has numeric dur" true (dur <> None);
        check Alcotest.bool "ts >= 0" true (Option.get ts >= 0.0);
        check Alcotest.bool "dur >= 0" true (Option.get dur >= 0.0))
      xs;
    (* The inner spans must nest inside the outer one. *)
    let bounds name =
      List.filter_map
        (fun e ->
          if field "name" Obs.Json.to_str e = Some name then
            Some (Option.get (field "ts" Obs.Json.to_num e), Option.get (field "dur" Obs.Json.to_num e))
          else None)
        xs
    in
    let outer_ts, outer_dur = List.hd (bounds "outer") in
    List.iter
      (fun (ts, dur) ->
        check Alcotest.bool "inner starts after outer" true (ts >= outer_ts);
        check Alcotest.bool "inner ends before outer" true
          (ts +. dur <= outer_ts +. outer_dur +. 1e-3))
      (bounds "inner");
    (* Depths recorded: outer at 0, inners at 1. *)
    let depths =
      List.filter_map
        (fun (s : Obs.Span.span) -> Some (s.Obs.Span.name, s.Obs.Span.depth))
        spans
    in
    check Alcotest.bool "outer depth 0" true (List.mem ("outer", 0) depths);
    check Alcotest.bool "inner depth 1" true (List.mem ("inner", 1) depths)

let test_span_survives_exception () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  (try Obs.Span.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  let recorded = Obs.Span.spans () in
  check Alcotest.int "span recorded despite raise" 1 (List.length recorded);
  (* Depth restored: a following span sits at depth 0 again. *)
  Obs.Span.with_span "after" (fun () -> ());
  let after = List.find (fun (s : Obs.Span.span) -> s.Obs.Span.name = "after") (Obs.Span.spans ()) in
  check Alcotest.int "depth restored" 0 after.Obs.Span.depth

(* --- Audit -------------------------------------------------------- *)

let sample_events =
  [
    Obs.Audit.Alloc
      {
        reg = "%r7";
        kind = Obs.Audit.Write_unit;
        strand = 2;
        level = Obs.Audit.Lrf;
        slot = 1;
        first = 10;
        last = 14;
        reads = 3;
        savings = 27.5;
        partial = false;
        mrf_copy = true;
      };
    Obs.Audit.Alloc
      {
        reg = "%r9";
        kind = Obs.Audit.Read_unit;
        strand = 0;
        level = Obs.Audit.Orf;
        slot = 2;
        first = 3;
        last = 9;
        reads = 2;
        savings = 4.25;
        partial = true;
        mrf_copy = true;
      };
    Obs.Audit.Place { warp = 3; instr = 12; level = Obs.Audit.Orf };
    Obs.Audit.Fill { warp = 1; instr = 4; pos = 0; entry = 2 };
    Obs.Audit.Evict { warp = 0; instr = 9; level = Obs.Audit.Rfc; writeback = true };
    Obs.Audit.Strand_boundary { instr = 17; strand = 4 };
    Obs.Audit.Desched { warp = 5; instr = 21; cause = Obs.Audit.Sw_boundary };
    Obs.Audit.Desched { warp = 6; instr = 22; cause = Obs.Audit.Scheduler };
  ]

let test_audit_jsonl_roundtrip () =
  (* Serialize as JSONL (via a sink into a buffer), parse each line
     back, decode, compare. *)
  let path = Filename.temp_file "rfh_audit" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter (Obs.Audit.jsonl_sink oc) sample_events;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check Alcotest.int "one line per event" (List.length sample_events) (List.length lines);
      let decoded =
        List.map
          (fun line ->
            match Obs.Json.parse line with
            | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
            | Ok j ->
              (match Obs.Audit.of_json j with
               | Ok ev -> ev
               | Error e -> Alcotest.failf "undecodable event %S: %s" line e))
          lines
      in
      check Alcotest.bool "round-trips" true (decoded = sample_events))

let test_audit_of_json_rejects () =
  List.iter
    (fun s ->
      let j = Result.get_ok (Obs.Json.parse s) in
      match Obs.Audit.of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" s
      | Error _ -> ())
    [
      {|{"ev":"bogus"}|};
      {|{"ev":"place","warp":0}|};
      {|{"ev":"place","warp":0,"instr":1,"level":"l2"}|};
      {|{"warp":0,"instr":1,"level":"lrf"}|};
    ]

let vectoradd_ctx () =
  let e = Option.get (Workloads.Registry.find "VectorAdd") in
  Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel)

let run_pipeline () =
  let ctx = vectoradd_ctx () in
  let config = Alloc.Config.make () in
  let placement = Alloc.Allocator.place config ctx in
  let sw = Sim.Traffic.run ~warps:4 ctx (Sim.Traffic.Sw { config; placement }) in
  let baseline = Sim.Traffic.run ~warps:4 ctx Sim.Traffic.Baseline in
  (sw, baseline)

let test_noop_sink_records_nothing () =
  let sink, events = Obs.Audit.memory_sink () in
  Obs.Audit.set_sink sink;
  Obs.Audit.set_enabled false;
  let _ = run_pipeline () in
  check Alcotest.int "no events recorded when disabled" 0 (List.length (events ()));
  (* emit itself is a no-op while disabled. *)
  Obs.Audit.emit (Obs.Audit.Place { warp = 0; instr = 0; level = Obs.Audit.Mrf });
  check Alcotest.int "emit is a no-op" 0 (List.length (events ()))

let test_place_events_match_counts () =
  let sink, events = Obs.Audit.memory_sink () in
  Obs.Audit.set_sink sink;
  let sw, baseline = run_pipeline () in
  Obs.Audit.disable ();
  let expected = Energy.Counts.create () in
  Energy.Counts.merge_into ~dst:expected sw.Sim.Traffic.counts;
  Energy.Counts.merge_into ~dst:expected baseline.Sim.Traffic.counts;
  let placed level =
    List.length
      (List.filter
         (function Obs.Audit.Place { level = l; _ } -> l = level | _ -> false)
         (events ()))
  in
  check Alcotest.int "LRF placements = LRF writes" (Energy.Counts.writes expected Energy.Model.Lrf)
    (placed Obs.Audit.Lrf);
  check Alcotest.int "ORF placements = ORF writes" (Energy.Counts.writes expected Energy.Model.Orf)
    (placed Obs.Audit.Orf);
  check Alcotest.int "MRF placements = MRF writes" (Energy.Counts.writes expected Energy.Model.Mrf)
    (placed Obs.Audit.Mrf);
  check Alcotest.bool "some placements happened" true (placed Obs.Audit.Mrf > 0)

let test_audit_events_from_allocator () =
  let sink, events = Obs.Audit.memory_sink () in
  Obs.Audit.set_sink sink;
  let ctx = vectoradd_ctx () in
  let _ = Alloc.Allocator.run (Alloc.Config.make ()) ctx in
  Obs.Audit.disable ();
  let allocs =
    List.filter (function Obs.Audit.Alloc _ -> true | _ -> false) (events ())
  in
  check Alcotest.bool "allocator reports decisions" true (List.length allocs > 0)

let suite =
  [
    Alcotest.test_case "counter arithmetic" `Quick (isolated test_counter_arithmetic);
    Alcotest.test_case "histogram summary" `Quick (isolated test_histogram_summary);
    Alcotest.test_case "gauge" `Quick (isolated test_gauge);
    Alcotest.test_case "metrics to JSON" `Quick (isolated test_metrics_json);
    Alcotest.test_case "json round-trip" `Quick (isolated test_json_roundtrip);
    Alcotest.test_case "json rejects garbage" `Quick (isolated test_json_rejects_garbage);
    Alcotest.test_case "disabled spans are free" `Quick (isolated test_span_disabled_is_free);
    Alcotest.test_case "span nesting -> Chrome trace" `Quick (isolated test_span_nesting_chrome_trace);
    Alcotest.test_case "span survives exception" `Quick (isolated test_span_survives_exception);
    Alcotest.test_case "audit JSONL round-trip" `Quick (isolated test_audit_jsonl_roundtrip);
    Alcotest.test_case "audit rejects bad JSON" `Quick (isolated test_audit_of_json_rejects);
    Alcotest.test_case "no-op sink records nothing" `Quick (isolated test_noop_sink_records_nothing);
    Alcotest.test_case "place events match Energy.Counts" `Quick (isolated test_place_events_match_counts);
    Alcotest.test_case "allocator reports into audit" `Quick (isolated test_audit_events_from_allocator);
  ]
