(* Experiment-driver tests: the paper's headline relationships must
   hold on the full workload suite (shape reproduction), and the report
   plumbing must be well-formed. *)

let check = Alcotest.check

(* A reduced-warp option set keeps the suite fast; normalized results
   are warp-count independent for warp-uniform kernels. *)
let opts = lazy { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }

let test_fig13_shape () =
  let opts = Lazy.force opts in
  let e scheme ~entries = Experiments.Sweep.mean_energy_ratio opts scheme ~entries in
  List.iter
    (fun entries ->
      check Alcotest.bool "SW beats HW at every size" true
        (e Experiments.Sweep.Sw_two ~entries < e Experiments.Sweep.Hw_two ~entries);
      check Alcotest.bool "LRF helps HW" true
        (e Experiments.Sweep.Hw_three ~entries < e Experiments.Sweep.Hw_two ~entries);
      check Alcotest.bool "LRF helps SW" true
        (e Experiments.Sweep.Sw_three_unified ~entries < e Experiments.Sweep.Sw_two ~entries);
      check Alcotest.bool "split LRF >= unified" true
        (e Experiments.Sweep.Sw_three_split ~entries
         <= e Experiments.Sweep.Sw_three_unified ~entries +. 1e-9);
      check Alcotest.bool "everything beats baseline" true
        (e Experiments.Sweep.Hw_two ~entries < 1.0))
    [ 1; 3; 6; 8 ]

let test_fig13_optimum_at_three () =
  let opts = Lazy.force opts in
  let best_sw, _ = Experiments.Energy_sweep.best opts Experiments.Sweep.Sw_three_split in
  let best_hw, _ = Experiments.Energy_sweep.best opts Experiments.Sweep.Hw_two in
  (* Paper: both two-level schemes and the SW three-level scheme are
     most efficient at 3 entries per thread. *)
  check Alcotest.int "SW optimum at 3 entries" 3 best_sw;
  check Alcotest.int "HW optimum at 3 entries" 3 best_hw

let test_headline_savings () =
  let opts = Lazy.force opts in
  let _, sw = Experiments.Energy_sweep.best opts Experiments.Sweep.Sw_three_split in
  let _, hw = Experiments.Energy_sweep.best opts Experiments.Sweep.Hw_two in
  (* Paper: 54% (SW, three-level) and 34% (HW RFC).  The substrate is
     synthetic, so accept the band around each. *)
  check Alcotest.bool "SW saves 45-60%" true (sw > 0.40 && sw < 0.55);
  check Alcotest.bool "HW saves 28-42%" true (hw > 0.58 && hw < 0.72)

let test_fig14_mrf_dominates () =
  let opts = Lazy.force opts in
  let share = Experiments.Energy_breakdown.mrf_share opts in
  (* Paper: roughly two thirds of the remaining energy is MRF. *)
  check Alcotest.bool "MRF majority of remaining energy" true (share > 0.5 && share < 0.9)

let test_fig15_worst_cases () =
  let opts = Lazy.force opts in
  let ratios = Experiments.Per_benchmark.ratios opts in
  check Alcotest.int "all benchmarks present" 36 (List.length ratios);
  (* Paper Fig. 15: Reduction and ScalarProd show the smallest gains;
     they must sit in the worst third here. *)
  let names_in_order = List.map fst ratios in
  let position name =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = name then i else go (i + 1) rest
    in
    go 0 names_in_order
  in
  check Alcotest.bool "Reduction in worst third" true (position "Reduction" >= 24);
  check Alcotest.bool "ScalarProd in worst third" true (position "ScalarProd" >= 24);
  (* Everyone saves something. *)
  List.iter (fun (_, r) -> check Alcotest.bool "ratio < 1" true (r < 1.0)) ratios

let test_fig2_read_once () =
  let opts = Lazy.force opts in
  let f = Experiments.Fig2.read_once_fraction opts in
  (* Paper: up to 70% of values are read only once. *)
  check Alcotest.bool "read-once fraction 55-85%" true (f > 0.55 && f < 0.85)

let test_perf_no_penalty_at_8 () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts)
      [ "VectorAdd"; "MatrixMul"; "Mandelbrot"; "Reduction"; "hotspot" ]
  in
  let rel = Experiments.Perf_study.relative_ipc opts ~policy:Sim.Perf.On_dependence ~active:8 in
  check Alcotest.bool "8 active warps match single-level" true (rel >= 0.95);
  let rel_sw =
    Experiments.Perf_study.relative_ipc opts ~policy:Sim.Perf.At_strand_boundaries ~active:8
  in
  check Alcotest.bool "SW policy too" true (rel_sw >= 0.95);
  let rel2 = Experiments.Perf_study.relative_ipc opts ~policy:Sim.Perf.On_dependence ~active:2 in
  check Alcotest.bool "2 active warps lose IPC" true (rel2 < 0.9)

let test_encoding_overhead () =
  let opts = Lazy.force opts in
  let r = Experiments.Encoding.compute opts in
  check Alcotest.bool "net positive even worst case" true (r.Experiments.Encoding.net_worst > 0.0);
  check Alcotest.bool "best case overhead ~0.3%" true
    (r.Experiments.Encoding.best_case_overhead > 0.002
     && r.Experiments.Encoding.best_case_overhead < 0.005);
  check Alcotest.bool "worst >= best" true
    (r.Experiments.Encoding.worst_case_overhead >= r.Experiments.Encoding.best_case_overhead)

let test_limit_study_ordering () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts)
      [ "VectorAdd"; "MatrixMul"; "Reduction"; "Mandelbrot"; "cp"; "srad" ]
  in
  let r = Experiments.Limit.compute opts in
  check Alcotest.bool "all-LRF is the floor" true
    (r.Experiments.Limit.ideal_all_lrf < r.Experiments.Limit.ideal_all_orf);
  check Alcotest.bool "all-ORF beats the real design" true
    (r.Experiments.Limit.ideal_all_orf < r.Experiments.Limit.fixed_best);
  check Alcotest.bool "oracle sizing never loses" true
    (r.Experiments.Limit.variable_orf_oracle <= r.Experiments.Limit.fixed_best +. 1e-9);
  check Alcotest.bool "backward flush costs energy" true
    (r.Experiments.Limit.hw_flush_backward >= r.Experiments.Limit.hw_keep_backward);
  check Alcotest.bool "never-flush is an improvement" true
    (r.Experiments.Limit.sw_never_flush <= r.Experiments.Limit.fixed_best +. 1e-9);
  check Alcotest.bool "8-at-3 scheduling ideal improves" true
    (r.Experiments.Limit.scheduling_ideal_8at3 <= r.Experiments.Limit.fixed_best +. 1e-9)

let test_ablation_ordering () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts)
      [ "MatrixMul"; "Mandelbrot"; "hotspot"; "cp" ]
  in
  let variants = Experiments.Ablation.compute opts in
  let find label =
    (List.find (fun v -> v.Experiments.Ablation.label = label) variants)
      .Experiments.Ablation.normalized_energy
  in
  let full = find "full design (split LRF, partial ranges, read operands)" in
  check Alcotest.bool "full beats baseline algorithm" true
    (full <= find "baseline algorithm only (Sec. 4.2)" +. 1e-9);
  check Alcotest.bool "full beats no-LRF" true (full <= find "no LRF (two-level)" +. 1e-9);
  check Alcotest.bool "full beats unified" true
    (full <= find "unified LRF instead of split (Sec. 6.3)" +. 1e-9);
  check Alcotest.bool "tagless HW still loses to SW" true
    (full < find "HW RFC with free tags (tag-energy ablation)");
  check Alcotest.bool "tags cost something" true
    (find "HW RFC with free tags (tag-energy ablation)"
     <= find "HW RFC with tag energy" +. 1e-9)

let test_divergence_stability () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts)
      [ "Mandelbrot"; "EigenValues"; "needle"; "VectorAdd" ]
  in
  let rows = Experiments.Divergence.compute opts in
  check Alcotest.int "4 rows" 4 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool
        (r.Experiments.Divergence.name ^ " ratio stable under divergence")
        true
        (abs_float (r.Experiments.Divergence.divergent_ratio -. r.Experiments.Divergence.uniform_ratio)
         < 0.06))
    rows;
  (* Mandelbrot's escape test diverges. *)
  let mandel =
    List.find (fun r -> r.Experiments.Divergence.name = "Mandelbrot") rows
  in
  check Alcotest.bool "mandelbrot diverges" true
    (mandel.Experiments.Divergence.divergent_branches > 0
     && mandel.Experiments.Divergence.simd_efficiency < 1.0)

let test_scheduling_jit_best () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts)
      [ "Reduction"; "ScalarProd"; "Dct8x8" ]
  in
  let rows = Experiments.Scheduling.compute opts in
  List.iter
    (fun r ->
      check Alcotest.bool (r.Experiments.Scheduling.name ^ " best <= original") true
        (r.Experiments.Scheduling.best <= r.Experiments.Scheduling.original +. 1e-9);
      check Alcotest.bool (r.Experiments.Scheduling.name ^ " best is the min") true
        (r.Experiments.Scheduling.best
         <= min r.Experiments.Scheduling.rescheduled
              (min r.Experiments.Scheduling.unrolled r.Experiments.Scheduling.unrolled_rescheduled)
            +. 1e-9))
    rows;
  (* The paper's worst cases improve under unroll+hoist. *)
  let reduction = List.find (fun r -> r.Experiments.Scheduling.name = "Reduction") rows in
  check Alcotest.bool "Reduction gains from unroll+resched" true
    (reduction.Experiments.Scheduling.unrolled_rescheduled
     < reduction.Experiments.Scheduling.original -. 0.05)

let test_variable_orf_realistic_loses () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts) [ "MatrixMul"; "Mandelbrot"; "cp" ]
  in
  let r = Experiments.Limit.compute opts in
  check Alcotest.bool "realistic worse than oracle" true
    (r.Experiments.Limit.variable_orf_realistic > r.Experiments.Limit.variable_orf_oracle);
  check Alcotest.bool "realistic worse than fixed" true
    (r.Experiments.Limit.variable_orf_realistic > r.Experiments.Limit.fixed_best)

let test_pressure_table () =
  let opts = Lazy.force opts in
  let t = Experiments.Pressure_study.table opts in
  let rendered = Util.Table.render t in
  (* One line per benchmark plus title/header/separator. *)
  check Alcotest.int "row count" (36 + 3) (List.length (String.split_on_char '\n' rendered))

let test_report_tables_exist () =
  let opts =
    Experiments.Options.with_benchmarks (Lazy.force opts) [ "VectorAdd"; "MatrixMul" ]
  in
  List.iter
    (fun (name, artefact) ->
      let tables = Experiments.Report.tables_of opts artefact in
      check Alcotest.bool (name ^ " has tables") true (tables <> []);
      List.iter
        (fun t -> check Alcotest.bool (name ^ " renders") true (String.length (Util.Table.render t) > 0))
        tables)
    Experiments.Report.artefact_names

(* The tentpole parallelism guarantee: every artefact's rendered tables
   are byte-identical whether the per-benchmark fan-out runs serially
   or on 4 domains. *)
let test_run_all_parity () =
  let base =
    Experiments.Options.with_benchmarks (Lazy.force opts)
      [ "VectorAdd"; "MatrixMul"; "Mandelbrot"; "Reduction"; "cp"; "hotspot" ]
  in
  let render_all opts =
    Experiments.Report.clear_caches ();
    Experiments.Report.artefact_names
    |> List.concat_map (fun (_, a) ->
           List.map Util.Table.render (Experiments.Report.tables_of opts a))
    |> String.concat "\n"
  in
  let serial = render_all (Experiments.Options.with_jobs base 1) in
  let parallel = render_all (Experiments.Options.with_jobs base 4) in
  check Alcotest.string "jobs=4 output byte-identical to jobs=1" serial parallel

let test_options_jobs () =
  let o = Experiments.Options.default () in
  check Alcotest.int "default serial" 1 o.Experiments.Options.jobs;
  check Alcotest.int "explicit" 3 (Experiments.Options.with_jobs o 3).Experiments.Options.jobs;
  check Alcotest.int "0 = auto" (Util.Pool.default_jobs ())
    (Experiments.Options.with_jobs o 0).Experiments.Options.jobs;
  check Alcotest.int "negative clamps" 1
    (Experiments.Options.with_jobs o (-2)).Experiments.Options.jobs;
  (* The params fingerprint is precomputed and tracks with_params. *)
  check Alcotest.string "fingerprint precomputed"
    (Experiments.Options.fingerprint o.Experiments.Options.params)
    o.Experiments.Options.params_fp;
  let o' = Experiments.Options.with_params o Energy.Params.default in
  check Alcotest.string "with_params refreshes fingerprint"
    (Experiments.Options.fingerprint Energy.Params.default)
    o'.Experiments.Options.params_fp

let test_options_unknown_benchmark () =
  Alcotest.check_raises "unknown" (Invalid_argument "unknown benchmark \"nope\"") (fun () ->
      ignore (Experiments.Options.with_benchmarks (Experiments.Options.default ()) [ "nope" ]))

let suite =
  [
    Alcotest.test_case "fig13 shape" `Slow test_fig13_shape;
    Alcotest.test_case "fig13 optimum at 3" `Slow test_fig13_optimum_at_three;
    Alcotest.test_case "headline savings bands" `Slow test_headline_savings;
    Alcotest.test_case "fig14 MRF dominates" `Slow test_fig14_mrf_dominates;
    Alcotest.test_case "fig15 worst cases" `Slow test_fig15_worst_cases;
    Alcotest.test_case "fig2 read-once" `Slow test_fig2_read_once;
    Alcotest.test_case "perf: no penalty at 8" `Slow test_perf_no_penalty_at_8;
    Alcotest.test_case "encoding overhead" `Slow test_encoding_overhead;
    Alcotest.test_case "limit study ordering" `Slow test_limit_study_ordering;
    Alcotest.test_case "ablation ordering" `Slow test_ablation_ordering;
    Alcotest.test_case "divergence stability" `Slow test_divergence_stability;
    Alcotest.test_case "scheduling JIT best" `Slow test_scheduling_jit_best;
    Alcotest.test_case "variable ORF realistic loses" `Slow test_variable_orf_realistic_loses;
    Alcotest.test_case "pressure table" `Quick test_pressure_table;
    Alcotest.test_case "report tables exist" `Quick test_report_tables_exist;
    Alcotest.test_case "run_all parity jobs=1 vs jobs=4" `Slow test_run_all_parity;
    Alcotest.test_case "options jobs + fingerprint" `Quick test_options_jobs;
    Alcotest.test_case "options unknown benchmark" `Quick test_options_unknown_benchmark;
  ]
