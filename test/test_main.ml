let () =
  Alcotest.run "rfh"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("ir", Test_ir.suite);
      ("asm", Test_asm.suite);
      ("analysis", Test_analysis.suite);
      ("strand", Test_strand.suite);
      ("energy", Test_energy.suite);
      ("alloc", Test_alloc.suite);
      ("machine", Test_machine.suite);
      ("sim", Test_sim.suite);
      ("perf-golden", Test_perf_golden.suite);
      ("simt", Test_simt.suite);
      ("trace", Test_trace.suite);
      ("variable-orf", Test_variable_orf.suite);
      ("extra", Test_extra.suite);
      ("pipeline", Test_pipeline.suite);
      ("workloads", Test_workloads.suite);
      ("micro", Test_micro.suite);
      ("transform", Test_transform.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("history", Test_history.suite);
      ("trend", Test_trend.suite);
      ("why", Test_why.suite);
      ("explain", Test_explain.suite);
      ("timeline", Test_timeline.suite);
      ("engine", Test_engine.suite);
      ("gcprof", Test_gcprof.suite);
      ("properties", Test_properties.suite);
    ]
