(* Tests for Obs.History: the JSONL run-record codec, garbage-line
   tolerance of the loader, and byte-stability of records modulo
   timestamp and git revision. *)

let check = Alcotest.check

let host ?(rev = "cafe0000") ?(dirty = false) () =
  { Obs.Host.cores = 8; os = "Unix"; ocaml = "5.1.1"; git_rev = rev; git_dirty = dirty }

let sample_record ?(rev = "cafe0000") ?(timestamp = "2026-08-08T00:00:00Z") () =
  {
    Obs.History.timestamp;
    source = "test";
    host = host ~rev ();
    jobs = 4;
    wall_s = 12.5;
    benches =
      [
        {
          Obs.History.hb_bench = "VectorAdd";
          hb_ipc = 0.25;
          hb_norm_energy = 0.53;
          hb_stalls = [ ("issued", 0.1); ("wait_long_latency", 0.9) ];
        };
      ];
    perfgate =
      Some
        {
          Obs.History.pg_ns_per_run = 1.5e6;
          pg_p90_ns = 1.8e6;
          pg_minor_words = 320.0;
          pg_runs = 5;
          pg_promoted_words = Some 12.0;
          pg_major_words = Some 40.0;
        };
    engine = Some { Obs.History.eng_useful = 0.4; eng_spawn = 0.1; eng_idle = 0.5 };
    gc =
      Some
        {
          Obs.History.hg_gc_share = 0.18;
          hg_minor_words = 9.7e6;
          hg_pause_p50_ns = 142000.0;
          hg_pause_p99_ns = 3143000.0;
        };
    jobs2_slower = Some true;
  }

let test_roundtrip () =
  let r = sample_record () in
  let once = Obs.History.to_string r in
  match Obs.History.of_string once with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    check Alcotest.string "encode/decode/re-encode is byte-stable" once
      (Obs.History.to_string decoded);
    check Alcotest.string "source survives" "test" decoded.Obs.History.source;
    check Alcotest.(option bool) "jobs2_slower survives" (Some true)
      decoded.Obs.History.jobs2_slower

let test_optional_sections_omitted () =
  let r =
    { (sample_record ()) with Obs.History.perfgate = None; engine = None; jobs2_slower = None }
  in
  let s = Obs.History.to_string r in
  let contains needle =
    let n = String.length needle and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "perfgate omitted, not null" false (contains "perfgate");
  check Alcotest.bool "engine omitted" false (contains "engine");
  check Alcotest.bool "jobs2_slower omitted" false (contains "jobs2_slower");
  match Obs.History.of_string s with
  | Error e -> Alcotest.fail e
  | Ok d ->
    check Alcotest.bool "decodes to None sections" true
      (d.Obs.History.perfgate = None && d.Obs.History.engine = None
      && d.Obs.History.jobs2_slower = None)

let test_rejects_garbage () =
  List.iter
    (fun line ->
      match Obs.History.of_string line with
      | Ok _ -> Alcotest.failf "decoded garbage line %S" line
      | Error _ -> ())
    [
      "not json at all";
      "{\"schema_version\":99}";
      "{\"schema_version\":1,\"timestamp\":\"t\"}";
      "[1,2,3]";
    ]

let test_append_load_with_garbage () =
  let path = Filename.temp_file "history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r1 = sample_record ~rev:"rev1" () in
      let r2 = sample_record ~rev:"rev2" ~timestamp:"2026-08-08T01:00:00Z" () in
      Obs.History.append ~path r1;
      (* Simulate a foreign/corrupt line between two good appends. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"schema_version\":99,\"who\":\"knows\"}\nnot json\n\n";
      close_out oc;
      Obs.History.append ~path r2;
      let records, rejected = Obs.History.load ~path in
      check Alcotest.int "both good records load" 2 (List.length records);
      check Alcotest.int "two bad lines counted (blank skipped silently)" 2 rejected;
      check Alcotest.(list string) "file order preserved" [ "rev1"; "rev2" ]
        (List.map (fun (r : Obs.History.t) -> r.Obs.History.host.Obs.Host.git_rev) records))

let test_load_missing_file () =
  let records, rejected = Obs.History.load ~path:"/nonexistent/history.jsonl" in
  check Alcotest.int "no records" 0 (List.length records);
  check Alcotest.int "no rejects" 0 rejected

(* Two records built from the same measurements must differ only in
   timestamp and git revision: pinning those makes the bytes equal. *)
let test_byte_stable_modulo_timestamp_rev () =
  let opts =
    Experiments.Options.with_benchmarks
      { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
      [ "VectorAdd"; "MatrixMul" ]
  in
  let m = Experiments.Run_manifest.collect opts in
  let r1 =
    Obs.History.of_manifest ~timestamp:"2026-08-08T00:00:00Z" ~host:(host ~rev:"aaaa" ())
      ~source:"bench" ~wall_s:1.0 m
  in
  let r2 =
    Obs.History.of_manifest ~timestamp:"2026-08-08T09:00:00Z" ~host:(host ~rev:"bbbb" ())
      ~source:"bench" ~wall_s:1.0 m
  in
  check Alcotest.bool "bytes differ before pinning" false
    (String.equal (Obs.History.to_string r1) (Obs.History.to_string r2));
  let pinned =
    {
      r2 with
      Obs.History.timestamp = r1.Obs.History.timestamp;
      host = { r2.Obs.History.host with Obs.Host.git_rev = "aaaa" };
    }
  in
  check Alcotest.string "identical after pinning timestamp+rev"
    (Obs.History.to_string r1) (Obs.History.to_string pinned)

let test_of_manifest_stall_shares () =
  let opts =
    Experiments.Options.with_benchmarks
      { (Experiments.Options.default ()) with Experiments.Options.warps = 4 }
      [ "VectorAdd" ]
  in
  let m = Experiments.Run_manifest.collect opts in
  let r = Obs.History.of_manifest ~source:"bench" ~wall_s:1.0 m in
  match r.Obs.History.benches with
  | [ b ] ->
    check Alcotest.string "bench name" "VectorAdd" b.Obs.History.hb_bench;
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 b.Obs.History.hb_stalls in
    check (Alcotest.float 1e-9) "stall shares sum to 1" 1.0 total;
    List.iter
      (fun (cause, v) ->
        if v < 0.0 || v > 1.0 then Alcotest.failf "stall share %s = %g out of range" cause v)
      b.Obs.History.hb_stalls
  | l -> Alcotest.failf "expected one bench point, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "record JSONL round-trip" `Quick test_roundtrip;
    Alcotest.test_case "optional sections omitted" `Quick test_optional_sections_omitted;
    Alcotest.test_case "decoder rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "append/load skips garbage lines" `Quick test_append_load_with_garbage;
    Alcotest.test_case "missing file loads empty" `Quick test_load_missing_file;
    Alcotest.test_case "byte-stable modulo timestamp/rev" `Quick
      test_byte_stable_modulo_timestamp_rev;
    Alcotest.test_case "manifest stall counts become shares" `Quick
      test_of_manifest_stall_shares;
  ]
