(* rfh — command-line driver regenerating every table and figure of the
   paper's evaluation, plus kernel/placement inspection commands. *)

open Cmdliner

(* Captured at startup so --history-out records the whole invocation's
   wall time, not just the manifest collection's. *)
let start_ns = Obs.Clock.now_ns ()

let opts_of ~warps ~seed ~benchmarks ~jobs =
  let base = { (Experiments.Options.default ()) with Experiments.Options.warps; seed } in
  let base = Experiments.Options.with_jobs base jobs in
  match benchmarks with
  | [] -> base
  | names -> Experiments.Options.with_benchmarks base names

let warps_arg =
  let doc = "Machine-resident warps to simulate per kernel." in
  Arg.(value & opt int 32 & info [ "warps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Deterministic seed for data-dependent branch behaviour." in
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED" ~doc)

let benchmarks_arg =
  let doc = "Restrict to the named benchmarks (default: all 36)." in
  Arg.(value & opt (list string) [] & info [ "benchmarks"; "b" ] ~docv:"NAMES" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-benchmark fan-out.  1 (the default) is the exact serial \
     path; 0 means one per recommended core.  Output is byte-identical at any setting."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of aligned text tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let verbose_arg =
  let doc = "Print allocator/simulator audit events to stderr (human-readable)." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let metrics_arg =
  let doc = "Append a metrics-registry summary after the command's output." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let manifest_out_arg =
  let doc = "Write a machine-readable run manifest (schema-versioned JSON) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "manifest-out" ] ~docv:"FILE" ~doc)

let report_out_arg =
  let doc = "Write a self-contained HTML run report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)

let history_out_arg =
  let doc =
    "Append one cross-run history record (JSONL, see $(b,rfh trend)) to $(docv).  The \
     record carries per-benchmark IPC/energy/stall shares plus the host fingerprint and \
     the invocation's wall time."
  in
  Arg.(value & opt (some string) None & info [ "history-out" ] ~docv:"FILE" ~doc)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_manifest_outputs ?compare m ~manifest_out ~report_out =
  let emit what path write =
    mkdirs (Filename.dirname path);
    (try write path
     with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
    Printf.printf "%s -> %s\n" what path
  in
  Option.iter
    (fun path -> emit "manifest" path (fun path -> Obs.Manifest.write_file ~path m))
    manifest_out;
  Option.iter
    (fun path -> emit "report" path (fun path -> Obs.Html_report.write_file ?compare ~path m))
    report_out

let elapsed_wall_s () =
  Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) start_ns) /. 1000.0

let append_history m path =
  mkdirs (Filename.dirname path);
  (try
     Obs.History.append ~path
       (Obs.History.of_manifest ~source:"rfh" ~wall_s:(elapsed_wall_s ()) m)
   with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
  Printf.printf "history -> %s\n" path

(* --manifest-out / --report-out / --history-out ride on any figure
   command: the manifest collection runs after the command's own output
   (it installs its own audit sink, so it must not race the
   command's). *)
let collect_outputs ?entries ?lrf opts ~manifest_out ~report_out ~history_out =
  if manifest_out <> None || report_out <> None || history_out <> None then begin
    let m = Experiments.Run_manifest.collect ?entries ?lrf opts in
    write_manifest_outputs m ~manifest_out ~report_out;
    Option.iter (append_history m) history_out
  end

(* [-v] is an alias for installing the human-readable audit printer:
   allocator and simulator decisions flow through Obs.Audit, not a
   logging framework, so nothing is installed (or paid for) without
   it. *)
let setup_verbosity verbose =
  if verbose then Obs.Audit.set_sink (Obs.Audit.printer_sink Format.err_formatter)

let print_metrics_if metrics =
  if metrics then Util.Table.print (Experiments.Report.metrics_table ())

let print_tables csv tables =
  List.iter
    (fun t ->
      if csv then (print_endline (Util.Table.csv t); print_newline ())
      else Util.Table.print t)
    tables

let artefact_cmd (name, artefact) =
  let doc =
    match name with
    | "fig2" -> "Register-value usage patterns per suite (Figure 2)."
    | "fig11" -> "Two-level read/write breakdown, HW vs SW (Figure 11)."
    | "fig12" -> "Three-level read/write breakdown, HW vs SW (Figure 12)."
    | "fig13" -> "Normalized energy vs entries for every organisation (Figure 13)."
    | "fig14" -> "Energy breakdown of the most efficient design (Figure 14)."
    | "fig15" -> "Per-benchmark normalized energy (Figure 15)."
    | "perf" -> "Two-level warp scheduler IPC study (Sec. 6)."
    | "encoding" -> "Instruction-encoding overhead (Sec. 6.5)."
    | "limit" -> "Register-hierarchy limit study (Sec. 7)."
    | "ablation" -> "Per-optimization allocator ablation (Secs. 4.3/4.4/6.3)."
    | "divergence" -> "SIMT divergence sensitivity of the energy result (extension)."
    | "pressure" -> "Register pressure and MRF occupancy per benchmark."
    | "scheduling" -> "Real rescheduling/unrolling passes re-measured (extension)."
    | "tables" -> "Echo the configuration tables 2-4."
    | _ -> "Experiment."
  in
  let run warps seed benchmarks jobs csv metrics manifest_out report_out history_out =
    let opts = opts_of ~warps ~seed ~benchmarks ~jobs in
    print_tables csv (Experiments.Report.tables_of opts artefact);
    print_metrics_if metrics;
    collect_outputs opts ~manifest_out ~report_out ~history_out
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ warps_arg $ seed_arg $ benchmarks_arg $ jobs_arg $ csv_arg $ metrics_arg
      $ manifest_out_arg $ report_out_arg $ history_out_arg)

let all_cmd =
  let doc = "Regenerate every table and figure." in
  let run warps seed benchmarks jobs csv metrics manifest_out report_out history_out =
    let opts = opts_of ~warps ~seed ~benchmarks ~jobs in
    List.iter
      (fun (_, a) -> print_tables csv (Experiments.Report.tables_of opts a))
      Experiments.Report.artefact_names;
    print_metrics_if metrics;
    collect_outputs opts ~manifest_out ~report_out ~history_out
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ warps_arg $ seed_arg $ benchmarks_arg $ jobs_arg $ csv_arg $ metrics_arg
      $ manifest_out_arg $ report_out_arg $ history_out_arg)

let kernels_cmd =
  let doc = "List the benchmarks, or print one kernel's PTX-like code." in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark to print.")
  in
  let run = function
    | None ->
      let t =
        Util.Table.create ~title:"Benchmarks (paper Table 1)"
          ~columns:[ "Name"; "Suite"; "Kernels"; "Static instrs"; "Blocks"; "Description" ]
      in
      List.iter
        (fun (e : Workloads.Registry.entry) ->
          let ks = Lazy.force e.Workloads.Registry.kernels in
          let sum f = List.fold_left (fun acc k -> acc + f k) 0 ks in
          Util.Table.add_row t
            [
              e.Workloads.Registry.name;
              Workloads.Suite.name e.Workloads.Registry.suite;
              string_of_int (List.length ks);
              string_of_int (sum Ir.Kernel.instr_count);
              string_of_int (sum Ir.Kernel.block_count);
              e.Workloads.Registry.description;
            ])
        (Workloads.Registry.all ());
      Util.Table.print t
    | Some name ->
      (match Workloads.Registry.find name with
       | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
       | Some e -> print_string (Ir.Kernel.to_string (Lazy.force e.Workloads.Registry.kernel)))
  in
  Cmd.v (Cmd.info "kernels" ~doc) Term.(const run $ name_arg)

let lrf_conv =
  let parse = function
    | "none" -> Ok Alloc.Config.No_lrf
    | "unified" -> Ok Alloc.Config.Unified
    | "split" -> Ok Alloc.Config.Split
    | s -> Error (`Msg (Printf.sprintf "unknown LRF mode %S (none|unified|split)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with Alloc.Config.No_lrf -> "none" | Alloc.Config.Unified -> "unified" | Alloc.Config.Split -> "split")
  in
  Arg.conv (parse, print)

let allocate_cmd =
  let doc = "Run the allocator on one benchmark and print the operand placements." in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let entries_arg =
    Arg.(value & opt int 3 & info [ "entries" ] ~docv:"N" ~doc:"ORF entries per thread (1-8).")
  in
  let lrf_arg =
    Arg.(value & opt lrf_conv Alloc.Config.Split & info [ "lrf" ] ~docv:"MODE" ~doc:"LRF mode.")
  in
  let run name entries lrf verbose =
    setup_verbosity verbose;
    match Workloads.Registry.find name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some e ->
      let k = Lazy.force e.Workloads.Registry.kernel in
      let ctx = Alloc.Context.create k in
      let config = Alloc.Config.make ~orf_entries:entries ~lrf () in
      let placement, stats = Alloc.Allocator.run config ctx in
      (match Alloc.Verify.check config ctx placement with
       | Ok () -> ()
       | Error errs ->
         prerr_endline "PLACEMENT FAILED VERIFICATION:";
         List.iter prerr_endline errs);
      Printf.printf "%s: %d strands; %d write units, %d read units; %d LRF + %d ORF allocations (%d partial)\n\n"
        e.Workloads.Registry.name
        (Strand.Partition.num_strands ctx.Alloc.Context.partition)
        stats.Alloc.Allocator.write_units stats.Alloc.Allocator.read_units
        stats.Alloc.Allocator.lrf_allocated stats.Alloc.Allocator.orf_allocated
        stats.Alloc.Allocator.partial_allocated;
      Ir.Kernel.iter_instrs k (fun _ i ->
          let id = i.Ir.Instr.id in
          let strand = Strand.Partition.strand_of_instr ctx.Alloc.Context.partition id in
          let boundary =
            if Strand.Partition.starts_strand ctx.Alloc.Context.partition id then "*" else " "
          in
          let dst =
            match Alloc.Placement.dest placement ~instr:id with
            | None -> "-"
            | Some d ->
              String.concat ""
                [
                  (match d.Alloc.Placement.to_lrf with Some bk -> Printf.sprintf "LRF[%d] " bk | None -> "");
                  (match d.Alloc.Placement.to_orf with Some en -> Printf.sprintf "ORF[%d] " en | None -> "");
                  (if d.Alloc.Placement.to_mrf then "MRF" else "");
                ]
          in
          let srcs =
            List.mapi
              (fun pos _ ->
                Alloc.Placement.level_name (Alloc.Placement.src placement ~instr:id ~pos))
              i.Ir.Instr.srcs
            |> String.concat ","
          in
          let fills =
            Alloc.Placement.fills_of placement ~instr:id
            |> List.map (fun (p, en) -> Printf.sprintf "fill(slot %d -> ORF[%d])" p en)
            |> String.concat " "
          in
          Printf.printf "s%-3d%s %-40s dst: %-18s srcs: %-24s %s\n" strand boundary
            (Ir.Instr.to_string i) dst srcs fills)
  in
  Cmd.v (Cmd.info "allocate" ~doc)
    Term.(const run $ name_arg $ entries_arg $ lrf_arg $ verbose_arg)

let selfcheck_cmd =
  let doc =
    "Run the allocator and verifier over every benchmark and hierarchy configuration."
  in
  let run () =
    let configs =
      List.concat_map
        (fun entries ->
          List.map
            (fun lrf -> Alloc.Config.make ~orf_entries:entries ~lrf ())
            [ Alloc.Config.No_lrf; Alloc.Config.Unified; Alloc.Config.Split ])
        [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    in
    let checked = ref 0 in
    let failed = ref 0 in
    List.iter
      (fun (e : Workloads.Registry.entry) ->
        List.iter
          (fun kernel ->
            let ctx = Alloc.Context.create kernel in
            List.iter
              (fun config ->
                incr checked;
                let placement = Alloc.Allocator.place config ctx in
                match Alloc.Verify.check config ctx placement with
                | Ok () -> ()
                | Error errs ->
                  incr failed;
                  Printf.printf "FAIL %s/%s under %s:\n  %s\n" e.Workloads.Registry.name
                    kernel.Ir.Kernel.name
                    (Format.asprintf "%a" Alloc.Config.pp config)
                    (String.concat "\n  " errs))
              configs)
          (Lazy.force e.Workloads.Registry.kernels))
      (Workloads.Registry.all ());
    Printf.printf "selfcheck: %d placements verified, %d failures\n" !checked !failed;
    if !failed > 0 then exit 1
  in
  Cmd.v (Cmd.info "selfcheck" ~doc) Term.(const run $ const ())

let trace_cmd =
  let doc =
    "Capture a benchmark's execution trace (Sec. 5.1 methodology): dynamic block sequences \
     per warp plus the control-flow-edge frequency profile."
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let run name warps seed =
    match Workloads.Registry.find name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some e ->
      let k = Lazy.force e.Workloads.Registry.kernel in
      let trace = Sim.Trace.capture ~warps ~seed k in
      print_string (Sim.Trace.to_string trace);
      print_newline ();
      let t =
        Util.Table.create ~title:"Control-flow edge frequencies"
          ~columns:[ "Edge"; "Executions" ]
      in
      List.iter
        (fun ((a, b), n) ->
          let from_ = if a < 0 then "entry" else Printf.sprintf "BB%d" a in
          Util.Table.add_row t [ Printf.sprintf "%s -> BB%d" from_ b; string_of_int n ])
        (Sim.Trace.edge_profile trace);
      Util.Table.print t
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ name_arg $ warps_arg $ seed_arg)

let compile_cmd =
  let doc =
    "Compile a PTX-flavoured assembly file (see Ir.Asm) onto the hierarchy: print strands, \
     operand placements and the measured energy saving."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly source file.")
  in
  let entries_arg =
    Arg.(value & opt int 3 & info [ "entries" ] ~docv:"N" ~doc:"ORF entries per thread (1-8).")
  in
  let lrf_arg =
    Arg.(value & opt lrf_conv Alloc.Config.Split & info [ "lrf" ] ~docv:"MODE" ~doc:"LRF mode.")
  in
  let run file entries lrf warps seed verbose =
    setup_verbosity verbose;
    let ic = open_in file in
    let len = in_channel_length ic in
    let source = really_input_string ic len in
    close_in ic;
    match Ir.Asm.parse ~name:(Filename.remove_extension (Filename.basename file)) source with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 1
    | Ok kernel ->
      let ctx = Alloc.Context.create kernel in
      let config = Alloc.Config.make ~orf_entries:entries ~lrf () in
      let placement = Alloc.Allocator.place config ctx in
      (match Alloc.Verify.check config ctx placement with
       | Ok () -> ()
       | Error errs ->
         prerr_endline "PLACEMENT FAILED VERIFICATION:";
         List.iter prerr_endline errs;
         exit 1);
      Ir.Kernel.iter_instrs kernel (fun _ i ->
          let id = i.Ir.Instr.id in
          let strand = Strand.Partition.strand_of_instr ctx.Alloc.Context.partition id in
          let boundary =
            if Strand.Partition.starts_strand ctx.Alloc.Context.partition id then "*" else " "
          in
          let dst =
            match Alloc.Placement.dest placement ~instr:id with
            | None -> "-"
            | Some d ->
              String.concat ""
                [
                  (match d.Alloc.Placement.to_lrf with Some bk -> Printf.sprintf "LRF[%d] " bk | None -> "");
                  (match d.Alloc.Placement.to_orf with Some en -> Printf.sprintf "ORF[%d] " en | None -> "");
                  (if d.Alloc.Placement.to_mrf then "MRF" else "");
                ]
          in
          let srcs =
            List.mapi
              (fun pos _ ->
                Alloc.Placement.level_name (Alloc.Placement.src placement ~instr:id ~pos))
              i.Ir.Instr.srcs
            |> String.concat ","
          in
          Printf.printf "s%-3d%s %-40s dst: %-18s srcs: %s\n" strand boundary
            (Ir.Instr.to_string i) dst srcs);
      let traffic =
        Sim.Traffic.run ~warps ~seed ctx (Sim.Traffic.Sw { config; placement })
      in
      let baseline = Sim.Traffic.run ~warps ~seed ctx Sim.Traffic.Baseline in
      let energy c =
        (Energy.Counts.energy config.Alloc.Config.params ~orf_entries:entries c)
          .Energy.Counts.total
      in
      let ratio =
        Util.Stats.ratio (energy traffic.Sim.Traffic.counts) (energy baseline.Sim.Traffic.counts)
      in
      Printf.printf "\nnormalized register-file energy: %.3f (%.1f%% saved)\n" ratio
        (100.0 *. (1.0 -. ratio))
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ file_arg $ entries_arg $ lrf_arg $ warps_arg $ seed_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* profile: run the full pipeline under spans + audit and report where
   time and register-file traffic go.                                  *)

let profile_default_benchmarks =
  [ "VectorAdd"; "MatrixMul"; "Mandelbrot"; "Reduction"; "cp"; "hotspot" ]

let profile_cmd =
  let doc =
    "Run benchmarks through the full pipeline (analysis, strand partitioning, allocation, \
     verification, traffic accounting, timing simulation, energy model) with phase spans and \
     the audit sink enabled; print per-phase timings and counter totals.  $(b,--trace-out) \
     additionally writes a Chrome trace-event JSON file; $(b,--audit-out) writes the \
     structured audit log as JSONL."
  in
  let trace_out_arg =
    let doc = "Write phase spans as Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let audit_out_arg =
    let doc = "Write the allocator/simulator audit log as JSON Lines." in
    Arg.(value & opt (some string) None & info [ "audit-out" ] ~docv:"FILE" ~doc)
  in
  let entries_arg =
    Arg.(value & opt int 3 & info [ "entries" ] ~docv:"N" ~doc:"ORF entries per thread (1-8).")
  in
  let lrf_arg =
    Arg.(value & opt lrf_conv Alloc.Config.Split & info [ "lrf" ] ~docv:"MODE" ~doc:"LRF mode.")
  in
  let run warps seed benchmarks jobs entries lrf trace_out audit_out manifest_out report_out
      verbose =
    let names = if benchmarks = [] then profile_default_benchmarks else benchmarks in
    let entries_of_name n =
      match Workloads.Registry.find n with
      | Some e -> e
      | None -> prerr_endline ("unknown benchmark: " ^ n); exit 1
    in
    let selected = List.map entries_of_name names in
    (* Recording setup: spans on, metrics zeroed, audit tee of a
       tallying sink + optional JSONL writer + optional -v printer. *)
    Obs.Span.reset ();
    Obs.Span.set_enabled true;
    Obs.Metrics.reset ();
    let place_tally = Array.make 4 0 in
    let level_idx = function
      | Obs.Audit.Lrf -> 0 | Obs.Audit.Orf -> 1 | Obs.Audit.Mrf -> 2 | Obs.Audit.Rfc -> 3
    in
    let event_count = ref 0 in
    let alloc_events = ref 0 in
    let desched_tally = ref 0 in
    let evict_tally = ref 0 in
    let tally ev =
      incr event_count;
      match ev with
      | Obs.Audit.Place { level; _ } ->
        place_tally.(level_idx level) <- place_tally.(level_idx level) + 1
      | Obs.Audit.Alloc _ -> incr alloc_events
      | Obs.Audit.Desched _ -> incr desched_tally
      | Obs.Audit.Evict _ -> incr evict_tally
      | Obs.Audit.Fill _ | Obs.Audit.Strand_boundary _ -> ()
    in
    let open_out_or_die path =
      try open_out path
      with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1
    in
    let audit_oc = Option.map open_out_or_die audit_out in
    let sinks =
      [ tally ]
      @ (match audit_oc with Some oc -> [ Obs.Audit.jsonl_sink oc ] | None -> [])
      @ (if verbose then [ Obs.Audit.printer_sink Format.err_formatter ] else [])
    in
    Obs.Audit.set_sink (Obs.Audit.tee sinks);
    (* Expected write totals, accumulated from every traffic run so the
       audit log can be cross-checked against Energy.Counts. *)
    let expected = Energy.Counts.create () in
    let params = Energy.Params.default in
    let wall_start = Obs.Clock.now_ns () in
    (* The per-benchmark pipeline fans out over [--jobs] domains; rows
       come back in selection order and the Energy.Counts accumulation
       for the audit cross-check happens serially afterwards. *)
    let rows =
      Util.Pool.parallel_map ~jobs ~label:"profile.benchmark"
        (fun (e : Workloads.Registry.entry) ->
          let name = e.Workloads.Registry.name in
          Obs.Span.with_span ("benchmark:" ^ name) (fun () ->
              let k = Lazy.force e.Workloads.Registry.kernel in
              let ctx = Alloc.Context.create k in
              let config = Alloc.Config.make ~orf_entries:entries ~lrf ~params () in
              let placement, stats = Alloc.Allocator.run config ctx in
              (match
                 Obs.Span.with_span "verify" (fun () -> Alloc.Verify.check config ctx placement)
               with
               | Ok () -> ()
               | Error errs ->
                 Printf.eprintf "%s: PLACEMENT FAILED VERIFICATION:\n  %s\n" name
                   (String.concat "\n  " errs));
              let sw =
                Sim.Traffic.run ~warps ~seed ctx (Sim.Traffic.Sw { config; placement })
              in
              let baseline = Sim.Traffic.run ~warps ~seed ctx Sim.Traffic.Baseline in
              let e_sw, e_base =
                Obs.Span.with_span "energy" (fun () ->
                    ( (Energy.Counts.energy params ~orf_entries:entries sw.Sim.Traffic.counts)
                        .Energy.Counts.total,
                      (Energy.Counts.energy params ~orf_entries:entries
                         baseline.Sim.Traffic.counts)
                        .Energy.Counts.total ))
              in
              let perf =
                Sim.Perf.run ~warps ~seed ~scheduler:(Sim.Perf.Two_level 8)
                  ~policy:Sim.Perf.On_dependence ctx
              in
              ( ( name,
                  Strand.Partition.num_strands ctx.Alloc.Context.partition,
                  stats,
                  Util.Stats.ratio e_sw e_base,
                  perf.Sim.Perf.ipc,
                  sw.Sim.Traffic.dynamic_instrs,
                  sw.Sim.Traffic.desched_events ),
                (sw.Sim.Traffic.counts, baseline.Sim.Traffic.counts) )))
        selected
    in
    List.iter
      (fun (_, (sw_counts, base_counts)) ->
        Energy.Counts.merge_into ~dst:expected sw_counts;
        Energy.Counts.merge_into ~dst:expected base_counts)
      rows;
    let results = List.map fst rows in
    let wall_ms = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) wall_start) in
    (* Per-benchmark results. *)
    let t =
      Util.Table.create ~title:"Profile: pipeline results"
        ~columns:
          [ "Benchmark"; "Strands"; "LRF allocs"; "ORF allocs"; "Norm energy"; "IPC";
            "Dyn instrs"; "Descheds" ]
    in
    List.iter
      (fun (name, strands, stats, ratio, ipc, dyn, desched) ->
        Util.Table.add_row t
          [
            name;
            string_of_int strands;
            string_of_int stats.Alloc.Allocator.lrf_allocated;
            string_of_int stats.Alloc.Allocator.orf_allocated;
            Printf.sprintf "%.3f" ratio;
            Printf.sprintf "%.2f" ipc;
            string_of_int dyn;
            string_of_int desched;
          ])
      results;
    Util.Table.print t;
    (* Per-phase timing. *)
    let pt =
      Util.Table.create ~title:"Profile: per-phase time (inclusive)"
        ~columns:[ "Phase"; "Calls"; "Total ms"; "% of wall" ]
    in
    List.iter
      (fun (phase, (calls, total_ms)) ->
        Util.Table.add_row pt
          [
            phase;
            string_of_int calls;
            Printf.sprintf "%.3f" total_ms;
            Printf.sprintf "%.1f" (Util.Stats.percent total_ms wall_ms);
          ])
      (Obs.Span.totals ());
    Util.Table.print pt;
    Util.Table.print (Experiments.Report.metrics_table ());
    (* Audit cross-check: Place events per level must reproduce the
       Energy.Counts write totals of the runs above. *)
    let expected_of level = Energy.Counts.writes expected level in
    let audit_summary =
      Util.Table.create ~title:"Audit log summary"
        ~columns:[ "Events"; "Count"; "Cross-check (Energy.Counts writes)" ]
    in
    let check level name idx =
      Util.Table.add_row audit_summary
        [
          "place." ^ name;
          string_of_int place_tally.(idx);
          Printf.sprintf "%d (%s)" (expected_of level)
            (if place_tally.(idx) = expected_of level then "ok" else "MISMATCH");
        ]
    in
    check Energy.Model.Lrf "lrf" 0;
    check Energy.Model.Orf "orf" 1;
    check Energy.Model.Mrf "mrf" 2;
    check Energy.Model.Rfc "rfc" 3;
    Util.Table.add_row audit_summary [ "alloc"; string_of_int !alloc_events; "" ];
    Util.Table.add_row audit_summary [ "desched"; string_of_int !desched_tally; "" ];
    Util.Table.add_row audit_summary [ "evict"; string_of_int !evict_tally; "" ];
    Util.Table.add_row audit_summary [ "total"; string_of_int !event_count; "" ];
    Util.Table.print audit_summary;
    let parity_ok =
      place_tally.(0) = expected_of Energy.Model.Lrf
      && place_tally.(1) = expected_of Energy.Model.Orf
      && place_tally.(2) = expected_of Energy.Model.Mrf
      && place_tally.(3) = expected_of Energy.Model.Rfc
    in
    (match trace_out with
     | None -> ()
     | Some path ->
       let spans = Obs.Span.spans () in
       (try Obs.Trace_export.write_file ~path ~process_name:"rfh profile" spans
        with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
       Printf.printf "trace: %d spans -> %s\n" (List.length spans) path);
    (match audit_oc with
     | None -> ()
     | Some oc ->
       close_out oc;
       Printf.printf "audit: %d events -> %s\n" !event_count (Option.get audit_out));
    Obs.Audit.disable ();
    Obs.Span.set_enabled false;
    collect_outputs ~entries ~lrf (opts_of ~warps ~seed ~benchmarks:names ~jobs) ~manifest_out
      ~report_out ~history_out:None;
    (* Cache behaviour: the always-on memo counters make hit rates
       visible without engine profiling.  Printed last so a manifest
       collection above (--manifest-out/--report-out) is included. *)
    Util.Table.print (Obs.Engine.memo_stats_table (Util.Eprof.memo_stats ()));
    if not parity_ok then begin
      prerr_endline "profile: audit/Energy.Counts write totals disagree";
      exit 1
    end
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ warps_arg $ seed_arg $ benchmarks_arg $ jobs_arg $ entries_arg $ lrf_arg
      $ trace_out_arg $ audit_out_arg $ manifest_out_arg $ report_out_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* baseline: record / check the regression-gate golden manifest.       *)

let baseline_default_path = "baselines/default.json"

let baseline_path_arg =
  let doc = "Golden manifest file." in
  Arg.(value & opt string baseline_default_path & info [ "baseline" ] ~docv:"FILE" ~doc)

(* The gate runs in CI on every push, so its default working set is the
   quick one: 8 warps reproduce the same normalized results for the
   warp-uniform kernels at a fraction of the simulation time. *)
let baseline_warps_arg =
  let doc = "Machine-resident warps to simulate per kernel." in
  Arg.(value & opt int 8 & info [ "warps" ] ~docv:"N" ~doc)

let baseline_record_cmd =
  let doc =
    "Record the golden run manifest the regression gate compares against.  Deterministic \
     fields (access counts, allocator stats, traffic, metric counters) are later compared \
     exactly; record once and commit the file."
  in
  let run warps seed benchmarks jobs path manifest_out report_out =
    let opts = opts_of ~warps ~seed ~benchmarks ~jobs in
    let m = Experiments.Run_manifest.collect opts in
    mkdirs (Filename.dirname path);
    Obs.Manifest.write_file ~path m;
    Printf.printf "baseline: %d benchmarks, mean normalized energy %.4f -> %s\n"
      (List.length m.Obs.Manifest.benches)
      (Obs.Manifest.mean_norm_energy m)
      path;
    write_manifest_outputs m ~manifest_out ~report_out
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const run $ baseline_warps_arg $ seed_arg $ benchmarks_arg $ jobs_arg $ baseline_path_arg
      $ manifest_out_arg $ report_out_arg)

let baseline_check_cmd =
  let doc =
    "Run fresh and diff against the golden manifest: exact comparison for deterministic \
     counts, relative tolerance for other floats, timings only with $(b,--timing-tol).  \
     Exits 1 on violations, 2 if the baseline is missing."
  in
  let float_tol_arg =
    let doc = "Relative tolerance for non-integral numbers." in
    Arg.(value & opt float 1e-9 & info [ "float-tol" ] ~docv:"TOL" ~doc)
  in
  let timing_tol_arg =
    let doc =
      "Also compare wall-clock timing fields (phase total_ms) with this relative tolerance; \
       without it they are skipped."
    in
    Arg.(value & opt (some float) None & info [ "timing-tol" ] ~docv:"TOL" ~doc)
  in
  let json_out_arg =
    let doc =
      "Write the machine-readable violations report (ok flag, compared count, violation \
       list) to $(docv) — written on success and failure alike."
    in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc)
  in
  let why_arg =
    let doc =
      "On failure, also print the ranked root-cause diagnosis (metric and stall-share \
       deltas between the golden manifest and the fresh run) to stderr.  Exit codes are \
       unchanged."
    in
    Arg.(value & flag & info [ "why" ] ~doc)
  in
  (* Exit-code contract (documented in docs/observability.md): 0 = the
     run matches the golden manifest, 1 = a compared field drifted,
     2 = the baseline file is missing or unreadable. *)
  let run warps seed benchmarks jobs path float_tol timing_tol manifest_out report_out
      json_out why =
    match Obs.Manifest.read_file ~path with
    | Error msg ->
      Printf.eprintf
        "baseline check: cannot read %s (%s)\n\
         exit 2: the golden manifest is missing or unreadable (1 = drift, 0 = match).\n\
         Record one first: rfh baseline record\n"
        path msg;
      exit 2
    | Ok baseline ->
      let opts = opts_of ~warps ~seed ~benchmarks ~jobs in
      let current = Experiments.Run_manifest.collect opts in
      write_manifest_outputs ~compare:baseline current ~manifest_out ~report_out;
      let report = Obs.Regress.diff ~float_tol ?timing_tol ~baseline ~current () in
      Util.Table.print (Obs.Regress.to_table report);
      Option.iter
        (fun path ->
          mkdirs (Filename.dirname path);
          (try
             let oc = open_out path in
             Fun.protect
               ~finally:(fun () -> close_out oc)
               (fun () ->
                 output_string oc (Obs.Json.to_string (Obs.Regress.to_json report));
                 output_char oc '\n')
           with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
          Printf.printf "violations json -> %s\n" path)
        json_out;
      if not (Obs.Regress.ok report) then begin
        if why then begin
          let r = Obs.Rootcause.analyze ~baseline ~candidate:current () in
          prerr_string (Obs.Rootcause.to_table ~top:10 r);
          match Obs.Rootcause.top_cause r with
          | Some c ->
            Printf.eprintf "baseline why: top cause — %s: %s — %s\n" c.Obs.Rootcause.c_bench
              c.Obs.Rootcause.c_what c.Obs.Rootcause.c_delta
          | None ->
            prerr_endline
              "baseline why: no metric or stall cause found — the drift is in a field the \
               probes do not summarize (see the violations table)."
        end;
        prerr_endline
          "baseline check: FAILED — exit 1: a compared field drifted from the golden \
           manifest (0 = match, 2 = baseline missing or unreadable).";
        exit 1
      end
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ baseline_warps_arg $ seed_arg $ benchmarks_arg $ jobs_arg $ baseline_path_arg
      $ float_tol_arg $ timing_tol_arg $ manifest_out_arg $ report_out_arg $ json_out_arg
      $ why_arg)

let baseline_cmd =
  let doc = "Record or check the regression-gate golden manifest." in
  Cmd.group (Cmd.info "baseline" ~doc) [ baseline_record_cmd; baseline_check_cmd ]

(* ------------------------------------------------------------------ *)
(* trend: drift analysis over the cross-run performance history.       *)

let history_default_path = "baselines/history.jsonl"

let short_rev rev = if String.length rev > 10 then String.sub rev 0 10 else rev

let trend_cmd =
  let doc =
    "Analyze the cross-run performance history for sustained drift: robust per-series \
     statistics (median/MAD), change-point segmentation and a stable/improved/regressed/\
     noisy verdict per series.  With $(b,--check), gate CI on it."
  in
  let history_arg =
    let doc =
      "History JSONL file, appended to by the bench harness, the perfgate and any command's \
       $(b,--history-out)."
    in
    Arg.(value & opt string history_default_path & info [ "history" ] ~docv:"FILE" ~doc)
  in
  let html_out_arg =
    let doc = "Write a self-contained HTML trend dashboard (inline SVG sparklines) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "html-out" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc =
      "Gate mode: exit 1 when any gated series shows a sustained regression, 2 when the \
       history holds fewer than 3 records (0 = clean)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let why_arg =
    let doc =
      "With $(b,--check), on failure also print a ranked root-cause diagnosis to stderr: \
       each offending record is diffed against the nearest earlier record with the same \
       source.  Exit codes are unchanged."
    in
    Arg.(value & flag & info [ "why" ] ~doc)
  in
  let run history_path html_out check why csv =
    let records, rejected = Obs.History.load ~path:history_path in
    let recs = Array.of_list records in
    let g = Obs.Trend.gate records in
    let title =
      Printf.sprintf "Trend over %d record%s (%s)%s" (Array.length recs)
        (if Array.length recs = 1 then "" else "s")
        history_path
        (if rejected = 0 then ""
         else Printf.sprintf " — %d undecodable line%s skipped" rejected
                (if rejected = 1 then "" else "s"))
    in
    let table =
      Util.Table.create ~title
        ~columns:
          [ "series"; "n"; "median"; "MAD"; "latest"; "z"; "shift"; "verdict";
            "change points"; "trend" ]
    in
    List.iter
      (fun (a : Obs.Trend.analysis) ->
        let s = a.Obs.Trend.a_series in
        let values = Array.map snd s.Obs.Trend.points in
        Util.Table.add_row table
          [
            (s.Obs.Trend.s_name ^ if s.Obs.Trend.s_gated then "" else " (ungated)");
            string_of_int (Array.length values);
            Printf.sprintf "%.4g" a.Obs.Trend.a_median;
            Printf.sprintf "%.4g" a.Obs.Trend.a_mad;
            Printf.sprintf "%.4g" a.Obs.Trend.a_latest;
            Printf.sprintf "%.2f" a.Obs.Trend.a_latest_z;
            Printf.sprintf "%+.1f%%" (100.0 *. a.Obs.Trend.a_shift);
            Obs.Trend.verdict_name a.Obs.Trend.a_verdict;
            (match a.Obs.Trend.a_change_points with
            | [] -> "-"
            | cps ->
              String.concat ", "
                (List.map
                   (fun cp ->
                     let idx = fst s.Obs.Trend.points.(cp) in
                     Printf.sprintf "#%d@%s" idx
                       (short_rev (recs.(idx).Obs.History.host : Obs.Host.t).git_rev))
                   cps));
            Obs.Trend.sparkline values;
          ])
      g.Obs.Trend.g_analyses;
    if csv then (print_endline (Util.Table.csv table); print_newline ())
    else Util.Table.print table;
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        (try Obs.Html_report.write_trend_page ~history_path ~records ~rejected ~path g
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "trend dashboard -> %s\n" path)
      html_out;
    (* Exit-code contract (documented in docs/observability.md): without
       --check the command always exits 0; with it, 0 = no sustained
       drift in a gated series, 1 = drift (stderr names each offending
       series with its change-point record and rev), 2 = fewer than 3
       records. *)
    if check then
      match g.Obs.Trend.g_exit with
      | 0 -> print_endline "trend check: OK — no sustained drift in any gated series."
      | 2 ->
        Printf.eprintf
          "trend check: only %d record%s in %s\n\
           exit 2: need at least 3 history records to judge drift (1 = drift, 0 = clean).\n"
          (Array.length recs)
          (if Array.length recs = 1 then "" else "s")
          history_path;
        exit 2
      | _ ->
        List.iter
          (fun (f : Obs.Trend.failure) ->
            Printf.eprintf
              "trend check: %s regressed %.4g -> %.4g at record %d (rev %s, source %s, \
               jobs %d)\n"
              f.Obs.Trend.f_series f.Obs.Trend.f_before f.Obs.Trend.f_after
              f.Obs.Trend.f_index (short_rev f.Obs.Trend.f_rev) f.Obs.Trend.f_source
              f.Obs.Trend.f_jobs)
          g.Obs.Trend.g_failures;
        if why then begin
          (* One diagnosis per offending record: diff it against the
             nearest earlier record with the same source (same run
             shape), falling back to the immediate predecessor. *)
          let indices =
            List.sort_uniq compare
              (List.filter_map
                 (fun (f : Obs.Trend.failure) ->
                   if f.Obs.Trend.f_index > 0 then Some f.Obs.Trend.f_index else None)
                 g.Obs.Trend.g_failures)
          in
          List.iter
            (fun idx ->
              let after = recs.(idx) in
              let rec find i =
                if i < 0 then idx - 1
                else if recs.(i).Obs.History.source = after.Obs.History.source then i
                else find (i - 1)
              in
              let before_idx = find (idx - 1) in
              let before = recs.(before_idx) in
              let r = Obs.Rootcause.of_history ~before ~after in
              Printf.eprintf "trend why: record %d vs %d (source %s, jobs %d)\n" before_idx
                idx after.Obs.History.source after.Obs.History.jobs;
              prerr_string (Obs.Rootcause.to_table ~top:5 r);
              match Obs.Rootcause.top_cause r with
              | Some c ->
                Printf.eprintf "trend why: top cause — %s: %s — %s\n" c.Obs.Rootcause.c_bench
                  c.Obs.Rootcause.c_what c.Obs.Rootcause.c_delta
              | None -> ())
            indices
        end;
        prerr_endline
          "trend check: FAILED — exit 1: a gated series shows a sustained regression \
           (0 = clean, 2 = not enough history).";
        exit 1
  in
  Cmd.v (Cmd.info "trend" ~doc)
    Term.(const run $ history_arg $ html_out_arg $ check_arg $ why_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* why: differential root-cause analysis of two run manifests.         *)

let why_cmd =
  let doc =
    "Differential root-cause analysis of two run manifests: metric deltas (IPC, \
     normalized energy, per-level RF energy), per-cause stall-share deltas and — with \
     $(b,--explain-a)/$(b,--explain-b) — per-live-range allocation decision flips, \
     combined into one deterministic ranked cause table.  Exits 0 when the analysis is \
     produced (even with zero causes), 1 when the attribution self-check fails, 2 when \
     an input is missing or unreadable."
  in
  let baseline_pos =
    let doc = "Baseline run manifest (JSON, as written by $(b,--manifest-out))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE" ~doc)
  in
  let candidate_pos =
    let doc = "Candidate run manifest to explain against the baseline." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE" ~doc)
  in
  let explain_a_arg =
    let doc =
      "Baseline allocation-explain JSONL stream (from $(b,rfh explain --jsonl-out)); \
       requires $(b,--explain-b)."
    in
    Arg.(value & opt (some string) None & info [ "explain-a" ] ~docv:"FILE" ~doc)
  in
  let explain_b_arg =
    let doc = "Candidate allocation-explain JSONL stream; requires $(b,--explain-a)." in
    Arg.(value & opt (some string) None & info [ "explain-b" ] ~docv:"FILE" ~doc)
  in
  let json_out_arg =
    let doc =
      "Write the machine-readable analysis (ranked causes, metric deltas, stall and \
       explain summaries, self-check verdict) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc)
  in
  let report_out_arg =
    let doc = "Write a self-contained HTML root-cause report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc =
      "Show only the $(docv) highest-ranked causes in the table ($(b,--json-out) always \
       carries all of them)."
    in
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"N" ~doc)
  in
  let exit2 fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf
          "why: %s\nexit 2: an input is missing or unreadable (1 = self-check failure, \
           0 = analysis produced).\n"
          msg;
        exit 2)
      fmt
  in
  let run baseline_path candidate_path explain_a explain_b json_out report_out top =
    let read_manifest what path =
      match Obs.Manifest.read_file ~path with
      | Ok m -> m
      | Error msg -> exit2 "cannot read %s manifest %s (%s)" what path msg
    in
    let baseline = read_manifest "baseline" baseline_path in
    let candidate = read_manifest "candidate" candidate_path in
    let explain =
      match (explain_a, explain_b) with
      | None, None -> None
      | Some a, Some b ->
        let load what path =
          match Obs.Explain_diff.load_jsonl ~path with
          | Error msg -> exit2 "cannot read %s explain stream %s (%s)" what path msg
          | Ok (decisions, rejected) ->
            if rejected > 0 then
              Printf.eprintf "why: %d undecodable line%s skipped in %s\n" rejected
                (if rejected = 1 then "" else "s")
                path;
            decisions
        in
        let da = load "baseline" a and db = load "candidate" b in
        Some (Obs.Explain_diff.align ~a:da ~b:db)
      | _ -> exit2 "--explain-a and --explain-b must be given together"
    in
    let r = Obs.Rootcause.analyze ?explain ~baseline ~candidate () in
    print_string (Obs.Rootcause.delta_table r);
    print_newline ();
    print_string (Obs.Rootcause.to_table ?top r);
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc (Obs.Json.to_string (Obs.Rootcause.to_json r));
               output_char oc '\n')
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "why json -> %s\n" path)
      json_out;
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        (try
           Obs.Html_report.write_why_page ~baseline_label:baseline_path
             ~candidate_label:candidate_path ~path r
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "why report -> %s\n" path)
      report_out;
    (match Obs.Rootcause.check r with
    | [] -> ()
    | issues ->
      List.iter (fun i -> Printf.eprintf "why self-check: %s\n" i) issues;
      prerr_endline
        "why: FAILED — exit 1: the attribution self-check failed (0 = analysis produced, \
         2 = input missing or unreadable).";
      exit 1);
    match Obs.Rootcause.top_cause r with
    | Some c ->
      Printf.printf "why: top cause — %s: %s — %s\n" c.Obs.Rootcause.c_bench
        c.Obs.Rootcause.c_what c.Obs.Rootcause.c_delta
    | None -> print_endline "why: no causes — the runs are equivalent under every probe."
  in
  Cmd.v (Cmd.info "why" ~doc)
    Term.(
      const run $ baseline_pos $ candidate_pos $ explain_a_arg $ explain_b_arg $ json_out_arg
      $ report_out_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* explain: decision-level introspection of one benchmark's allocation
   plus per-instruction energy attribution.                            *)

let explain_verdict_str = function
  | None -> "-"
  | Some (c : Obs.Explain.candidate) ->
    (match c.Obs.Explain.verdict with
     | Obs.Explain.Chosen -> Printf.sprintf "chosen (%.1f pJ)" c.Obs.Explain.savings
     | Obs.Explain.Ineligible why -> "ineligible: " ^ why
     | Obs.Explain.Negative_savings ->
       Printf.sprintf "negative (%.1f pJ)" c.Obs.Explain.savings
     | Obs.Explain.No_free_slot ->
       Printf.sprintf "no slot (%.1f pJ)" c.Obs.Explain.savings)

let explain_outcome_str (d : Obs.Explain.decision) =
  match d.Obs.Explain.outcome with
  | Obs.Explain.To_lrf { bank } -> Printf.sprintf "LRF[%d]" bank
  | Obs.Explain.To_orf { entry; shortened } ->
    if shortened > 0 then Printf.sprintf "ORF[%d] (shortened x%d)" entry shortened
    else Printf.sprintf "ORF[%d]" entry
  | Obs.Explain.To_mrf -> "MRF"

let explain_cmd =
  let doc =
    "Explain one benchmark's allocation decisions: per live-range unit, the candidate \
     levels the allocator weighed (with energy-savings estimates), why losers lost, \
     partial-range shortening, and the final placement — cross-checked against the run \
     manifest's allocator stats.  Also attributes register-file energy to each static \
     instruction and prints the top-$(b,--top) energy-bearing instructions.  \
     $(b,--jsonl-out) writes the decision stream as JSON Lines; $(b,--report-out) writes \
     an HTML report with the decision tables and an energy heatmap; $(b,--trace-out) \
     writes a Perfetto trace with per-cycle counter tracks."
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Energy-ranked instructions to print.")
  in
  let entries_arg =
    Arg.(value & opt int 3 & info [ "entries" ] ~docv:"N" ~doc:"ORF entries per thread (1-8).")
  in
  let lrf_arg =
    Arg.(value & opt lrf_conv Alloc.Config.Split & info [ "lrf" ] ~docv:"MODE" ~doc:"LRF mode.")
  in
  let jsonl_out_arg =
    let doc = "Write every allocation decision as JSON Lines to $(docv)." in
    Arg.(value & opt (some string) None & info [ "jsonl-out" ] ~docv:"FILE" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write a Chrome trace-event JSON file with phase spans and the simulator counter \
       tracks (active warps, per-level accesses, occupancy)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run name top warps seed entries lrf jsonl_out trace_out report_out verbose =
    setup_verbosity verbose;
    match Workloads.Registry.find name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some e ->
      let bench = e.Workloads.Registry.name in
      let kernels = Lazy.force e.Workloads.Registry.kernels in
      let params = Energy.Params.default in
      let config = Alloc.Config.make ~orf_entries:entries ~lrf ~params () in
      if trace_out <> None then begin
        Obs.Span.reset ();
        Obs.Span.set_enabled true;
        Obs.Counters.reset ();
        Obs.Counters.set_enabled true
      end;
      (* Decision recorder: memory sink, teed into the JSONL writer. *)
      let mem_sink, decisions = Obs.Explain.memory_sink () in
      let jsonl_oc =
        Option.map
          (fun path ->
            mkdirs (Filename.dirname path);
            try open_out path
            with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1)
          jsonl_out
      in
      Obs.Explain.set_sink
        (Obs.Explain.tee
           (mem_sink
            :: (match jsonl_oc with Some oc -> [ Obs.Explain.jsonl_sink oc ] | None -> [])));
      (* Serial per-kernel pipeline: allocate under the explainer, then
         account traffic with per-instruction attribution on. *)
      let per_kernel =
        List.map
          (fun k ->
            let ctx = Alloc.Context.create k in
            let placement, stats = Alloc.Allocator.run config ctx in
            let sw =
              Sim.Traffic.run ~warps ~seed ~attribution:true ctx
                (Sim.Traffic.Sw { config; placement })
            in
            let baseline = Sim.Traffic.run ~warps ~seed ctx Sim.Traffic.Baseline in
            (k, ctx, placement, stats, sw, baseline))
          kernels
      in
      (* Everything below reads the recorder's memory; stop recording
         before the manifest collection re-runs the allocator. *)
      Obs.Explain.disable ();
      Option.iter close_out jsonl_oc;
      let all_decisions = decisions () in
      let reports =
        List.map
          (fun (k, ctx, placement, stats, sw, baseline) ->
            let kname = k.Ir.Kernel.name in
            let ds =
              List.filter (fun d -> d.Obs.Explain.kernel = kname) all_decisions
            in
            let energies =
              Energy.Counts.attributed_energies params ~orf_entries:entries
                sw.Sim.Traffic.counts
            in
            let total_pj = Array.fold_left ( +. ) 0.0 energies in
            let e_sw =
              (Energy.Counts.energy params ~orf_entries:entries sw.Sim.Traffic.counts)
                .Energy.Counts.total
            in
            let e_base =
              (Energy.Counts.energy params ~orf_entries:entries baseline.Sim.Traffic.counts)
                .Energy.Counts.total
            in
            let placed =
              List.length (List.filter Obs.Explain.placed ds)
            in
            Printf.printf
              "kernel %s: %d decisions (%d write units, %d read units); %d placed \
               upper-level, %d left in MRF; normalized energy %.3f\n"
              kname (List.length ds) stats.Alloc.Allocator.write_units
              stats.Alloc.Allocator.read_units placed
              (List.length ds - placed)
              (Util.Stats.ratio e_sw e_base);
            (* Decision table. *)
            let dt =
              Util.Table.create ~title:(Printf.sprintf "Decisions: %s" kname)
                ~columns:
                  [ "#"; "Value"; "Kind"; "Strand"; "Range"; "Reads"; "LRF"; "ORF"; "Outcome" ]
            in
            List.iter
              (fun (d : Obs.Explain.decision) ->
                let cand lvl =
                  List.find_opt
                    (fun (c : Obs.Explain.candidate) -> c.Obs.Explain.level = lvl)
                    d.Obs.Explain.candidates
                in
                let reads =
                  let n = List.length d.Obs.Explain.covered in
                  if d.Obs.Explain.dropped_reads > 0 then
                    Printf.sprintf "%d (-%d)" n d.Obs.Explain.dropped_reads
                  else string_of_int n
                in
                Util.Table.add_row dt
                  [
                    string_of_int d.Obs.Explain.seq;
                    d.Obs.Explain.reg
                    ^ (if d.Obs.Explain.mrf_copy then " +mrf-copy" else "");
                    d.Obs.Explain.kind;
                    string_of_int d.Obs.Explain.strand;
                    Printf.sprintf "[%d,%d)" d.Obs.Explain.first d.Obs.Explain.last;
                    reads;
                    explain_verdict_str (cand "lrf");
                    explain_verdict_str (cand "orf");
                    explain_outcome_str d;
                  ])
              ds;
            Util.Table.print dt;
            (* Annotated instruction stream: operand levels plus the
               attributed energy of every static instruction. *)
            let share pc =
              if total_pj <= 0.0 || pc >= Array.length energies then 0.0
              else energies.(pc) /. total_pj
            in
            Printf.printf "instructions (attributed register-file energy, %% of %.1f pJ):\n"
              total_pj;
            let instr_lines = ref [] in
            Ir.Kernel.iter_instrs k (fun _ i ->
                let id = i.Ir.Instr.id in
                let strand =
                  Strand.Partition.strand_of_instr ctx.Alloc.Context.partition id
                in
                let boundary =
                  if Strand.Partition.starts_strand ctx.Alloc.Context.partition id then "*"
                  else " "
                in
                let dst =
                  match Alloc.Placement.dest placement ~instr:id with
                  | None -> "-"
                  | Some d ->
                    String.concat ""
                      [
                        (match d.Alloc.Placement.to_lrf with
                         | Some bk -> Printf.sprintf "LRF[%d] " bk
                         | None -> "");
                        (match d.Alloc.Placement.to_orf with
                         | Some en -> Printf.sprintf "ORF[%d] " en
                         | None -> "");
                        (if d.Alloc.Placement.to_mrf then "MRF" else "");
                      ]
                in
                let srcs =
                  List.mapi
                    (fun pos _ ->
                      Alloc.Placement.level_name
                        (Alloc.Placement.src placement ~instr:id ~pos))
                    i.Ir.Instr.srcs
                  |> String.concat ","
                in
                let pj = if id < Array.length energies then energies.(id) else 0.0 in
                instr_lines :=
                  {
                    Obs.Explain.pc = id;
                    strand;
                    text = Ir.Instr.to_string i;
                    pj;
                    share = share id;
                  }
                  :: !instr_lines;
                Printf.printf "s%-3d%s %-40s dst: %-18s srcs: %-20s %8.1f pJ %5.1f%%\n" strand
                  boundary (Ir.Instr.to_string i) dst srcs pj (100.0 *. share id));
            print_newline ();
            (* Top-N energy-bearing instructions. *)
            let tt =
              Util.Table.create
                ~title:(Printf.sprintf "Top %d instructions by attributed energy: %s" top kname)
                ~columns:[ "PC"; "Strand"; "Instruction"; "pJ"; "Share" ]
            in
            List.iter
              (fun (pc, pj) ->
                let i = Ir.Kernel.instr k pc in
                Util.Table.add_row tt
                  [
                    string_of_int pc;
                    string_of_int
                      (Strand.Partition.strand_of_instr ctx.Alloc.Context.partition pc);
                    Ir.Instr.to_string i;
                    Printf.sprintf "%.1f" pj;
                    Printf.sprintf "%.1f%%" (100.0 *. share pc);
                  ])
              (Energy.Counts.top_instrs params ~orf_entries:entries ~n:top
                 sw.Sim.Traffic.counts);
            Util.Table.print tt;
            {
              Obs.Explain.kr_kernel = kname;
              kr_decisions = ds;
              kr_instrs = List.rev !instr_lines;
              kr_total_pj = total_pj;
            })
          per_kernel
      in
      (* Cross-check: every live-range unit the allocator considered
         must have produced exactly one decision event, and the outcome
         tally must reproduce the manifest's allocator stats. *)
      let opts = opts_of ~warps ~seed ~benchmarks:[ bench ] ~jobs:1 in
      let m = Experiments.Run_manifest.collect ~entries ~lrf opts in
      let row =
        match
          List.find_opt (fun b -> b.Obs.Manifest.bench = bench) m.Obs.Manifest.benches
        with
        | Some b -> b
        | None -> prerr_endline "explain: benchmark missing from manifest"; exit 1
      in
      let count p = List.length (List.filter p all_decisions) in
      let lrf_n =
        count (fun d ->
            match d.Obs.Explain.outcome with Obs.Explain.To_lrf _ -> true | _ -> false)
      in
      let orf_n =
        count (fun d ->
            match d.Obs.Explain.outcome with Obs.Explain.To_orf _ -> true | _ -> false)
      in
      let partial_n =
        count (fun d ->
            match d.Obs.Explain.outcome with
            | Obs.Explain.To_orf { shortened; _ } -> shortened > 0
            | _ -> false)
      in
      let checks =
        [
          ("decisions = write + read units", List.length all_decisions,
           row.Obs.Manifest.write_units + row.Obs.Manifest.read_units);
          ("LRF placements", lrf_n, row.Obs.Manifest.lrf_allocs);
          ("ORF placements", orf_n, row.Obs.Manifest.orf_allocs);
          ("partial (shortened) placements", partial_n, row.Obs.Manifest.partial_allocs);
        ]
      in
      let ct =
        Util.Table.create ~title:"Cross-check vs run-manifest allocator stats"
          ~columns:[ "Check"; "Explainer"; "Manifest"; "" ]
      in
      let ok = ref true in
      List.iter
        (fun (what, got, want) ->
          if got <> want then ok := false;
          Util.Table.add_row ct
            [ what; string_of_int got; string_of_int want;
              (if got = want then "ok" else "MISMATCH") ])
        checks;
      Util.Table.print ct;
      Option.iter (fun n -> Printf.printf "jsonl: %d decisions -> %s\n"
                      (List.length all_decisions) n) jsonl_out;
      Option.iter
        (fun path ->
          mkdirs (Filename.dirname path);
          (try Obs.Html_report.write_file ~explain:reports ~path m
           with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
          Printf.printf "report -> %s\n" path)
        report_out;
      (match trace_out with
       | None -> ()
       | Some path ->
         let spans = Obs.Span.spans () in
         let counters = Obs.Counters.tracks () in
         mkdirs (Filename.dirname path);
         (try
            Obs.Trace_export.write_file ~path ~process_name:"rfh explain" ~counters spans
          with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
         Printf.printf "trace: %d spans, %d counter tracks -> %s\n" (List.length spans)
           (List.length counters) path;
         Obs.Counters.set_enabled false;
         Obs.Span.set_enabled false);
      if not !ok then begin
        prerr_endline "explain: decision events disagree with the manifest allocator stats";
        exit 1
      end
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ name_arg $ top_arg $ warps_arg $ seed_arg $ entries_arg $ lrf_arg
      $ jsonl_out_arg $ trace_out_arg $ report_out_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* timeline: warp-level pipeline introspection of one benchmark's
   timing simulation — per-cause stall breakdown across scheduler
   configurations, active-set residency, top stalled warps, and the
   per-warp state intervals as JSONL / Perfetto slices.               *)

let timeline_cmd =
  let doc =
    "Attribute every warp-cycle of one benchmark's timing simulation to a stall cause \
     (issued, long/short-latency dependence, banked-MRF conflict serialization, \
     descheduled, lost arbitration, finished) across scheduler/policy configurations, \
     with active-set residency stats and the most-stalled warps.  The breakdown is exact: \
     it sums to cycles x warps for every configuration, and the command exits 1 if any \
     cross-check fails.  $(b,--jsonl-out) writes the per-warp state intervals as JSON \
     Lines (validated by re-reading); $(b,--trace-out) writes a Perfetto trace whose \
     timeline rows render one thread per warp; $(b,--report-out) writes the HTML run \
     report with the stall-attribution section."
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let banks_arg =
    let doc = "MRF banks for the banked operand-fetch configurations (Table 2: 32)." in
    Arg.(value & opt int 32 & info [ "mrf-banks" ] ~docv:"N" ~doc)
  in
  let top_arg =
    Arg.(value & opt int 8 & info [ "top" ] ~docv:"N" ~doc:"Most-stalled warps to print.")
  in
  let jsonl_out_arg =
    let doc = "Write the recorded warp-state intervals as JSON Lines to $(docv)." in
    Arg.(value & opt (some string) None & info [ "jsonl-out" ] ~docv:"FILE" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write a Chrome trace-event JSON file with phase spans, simulator counter tracks and \
       the per-warp timeline slices (one Perfetto thread per warp)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run name warps seed banks top jsonl_out trace_out report_out =
    match Workloads.Registry.find name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some e ->
      let bench = e.Workloads.Registry.name in
      let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
      if trace_out <> None then begin
        Obs.Span.reset ();
        Obs.Span.set_enabled true;
        Obs.Counters.reset ();
        Obs.Counters.set_enabled true
      end;
      let base_configs =
        [
          ("single-level on-dep", Sim.Perf.Single_level, Sim.Perf.On_dependence);
          ("two-level-8 on-dep", Sim.Perf.Two_level 8, Sim.Perf.On_dependence);
          ("two-level-8 strand", Sim.Perf.Two_level 8, Sim.Perf.At_strand_boundaries);
        ]
      in
      let configs =
        List.map (fun (l, s, p) -> (l ^ " ideal", s, p, None)) base_configs
        @ List.map (fun (l, s, p) -> (l ^ " banked", s, p, Some banks)) base_configs
      in
      (* The recorder captures the configuration the paper cares most
         about: the two-level scheduler under the hardware policy with
         banked operand fetch. *)
      let primary_label = "two-level-8 on-dep banked" in
      let mem_sink, intervals = Obs.Timeline.memory_sink () in
      let jsonl_oc =
        Option.map
          (fun path ->
            mkdirs (Filename.dirname path);
            try open_out path
            with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1)
          jsonl_out
      in
      let failures = ref [] in
      let check what ok = if not ok then failures := what :: !failures in
      let results =
        List.map
          (fun (label, scheduler, policy, mrf_banks) ->
            let primary = label = primary_label in
            if primary then
              Obs.Timeline.set_sink
                (Obs.Timeline.tee
                   (mem_sink
                    :: (match jsonl_oc with
                        | Some oc -> [ Obs.Timeline.jsonl_sink oc ]
                        | None -> [])));
            let r = Sim.Perf.run ~warps ~seed ?mrf_banks ~scheduler ~policy ctx in
            if primary then Obs.Timeline.disable ();
            (* Exactness invariant: the breakdown accounts for every
               warp-cycle, per warp and in total, and the issued total
               reproduces the instruction count. *)
            check
              (Printf.sprintf "%s: stall total = cycles x warps" label)
              (Sim.Perf.breakdown_total r.Sim.Perf.stalls = r.Sim.Perf.cycles * warps);
            Array.iter
              (fun (ws : Sim.Perf.warp_stats) ->
                check
                  (Printf.sprintf "%s: warp %d breakdown sums to cycles" label
                     ws.Sim.Perf.warp)
                  (Sim.Perf.breakdown_total ws.Sim.Perf.breakdown = r.Sim.Perf.cycles))
              r.Sim.Perf.per_warp;
            check
              (Printf.sprintf "%s: issued cycles = instructions" label)
              (r.Sim.Perf.stalls.Sim.Perf.issued = r.Sim.Perf.instructions);
            (label, r))
          configs
      in
      Option.iter close_out jsonl_oc;
      let primary_r = List.assoc primary_label results in
      (* Recorder neutrality: re-running the recorded configuration
         with the recorder off must reproduce the same breakdown. *)
      let unrecorded =
        Sim.Perf.run ~warps ~seed ~mrf_banks:banks ~scheduler:(Sim.Perf.Two_level 8)
          ~policy:Sim.Perf.On_dependence ctx
      in
      check "recorder on/off breakdown identity"
        (Sim.Perf.breakdown_fields unrecorded.Sim.Perf.stalls
         = Sim.Perf.breakdown_fields primary_r.Sim.Perf.stalls
        && unrecorded.Sim.Perf.cycles = primary_r.Sim.Perf.cycles);
      (* Interval cross-checks: per warp, the recorded intervals tile
         [0, cycles) and re-derive the breakdown exactly. *)
      let ivs = intervals () in
      for w = 0 to warps - 1 do
        let wivs = List.filter (fun iv -> iv.Obs.Timeline.warp = w) ivs in
        let rec tiles expected = function
          | [] -> expected = primary_r.Sim.Perf.cycles
          | iv :: tl -> iv.Obs.Timeline.start = expected && tiles iv.Obs.Timeline.stop tl
        in
        check (Printf.sprintf "warp %d intervals tile [0, cycles)" w) (tiles 0 wivs);
        let from_ivs cause =
          List.fold_left
            (fun acc iv ->
              if iv.Obs.Timeline.state = cause then
                acc + (iv.Obs.Timeline.stop - iv.Obs.Timeline.start)
              else acc)
            0 wivs
        in
        let ws = primary_r.Sim.Perf.per_warp.(w) in
        List.iter
          (fun cause ->
            check
              (Printf.sprintf "warp %d: intervals re-derive %s cycles" w
                 (Obs.Timeline.state_name cause))
              (from_ivs cause = Sim.Perf.breakdown_get ws.Sim.Perf.breakdown cause))
          Obs.Timeline.all_states
      done;
      (* JSONL round-trip: the written stream must decode back to the
         recorded intervals, line for line. *)
      Option.iter
        (fun path ->
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let decoded =
            List.rev_map
              (fun line ->
                match Obs.Json.parse line with
                | Error err ->
                  prerr_endline ("timeline: bad JSONL line: " ^ err);
                  exit 1
                | Ok j ->
                  (match Obs.Timeline.of_json j with
                   | Ok iv -> iv
                   | Error err ->
                     prerr_endline ("timeline: undecodable interval: " ^ err);
                     exit 1))
              !lines
          in
          check "jsonl round-trip reproduces the recorded intervals" (decoded = ivs);
          Printf.printf "jsonl: %d intervals -> %s (round-trip ok)\n" (List.length ivs) path)
        jsonl_out;
      (* Stall-breakdown table: one row per configuration. *)
      let bt =
        Util.Table.create
          ~title:
            (Printf.sprintf "Stall attribution: %s (%d warps, %% of cycles x warps)" bench
               warps)
          ~columns:
            ([ "Config"; "Cycles"; "IPC" ]
            @ List.map Obs.Timeline.state_name Obs.Timeline.all_states)
      in
      List.iter
        (fun (label, (r : Sim.Perf.result)) ->
          let total = float_of_int (max 1 (Sim.Perf.breakdown_total r.Sim.Perf.stalls)) in
          Util.Table.add_row bt
            ([
               label;
               string_of_int r.Sim.Perf.cycles;
               Printf.sprintf "%.3f" r.Sim.Perf.ipc;
             ]
            @ List.map
                (fun cause ->
                  Printf.sprintf "%.1f%%"
                    (100.0
                    *. float_of_int (Sim.Perf.breakdown_get r.Sim.Perf.stalls cause)
                    /. total))
                Obs.Timeline.all_states))
        results;
      Util.Table.print bt;
      (* Residency table. *)
      let rt =
        Util.Table.create ~title:"Active-set residency"
          ~columns:
            [ "Config"; "Entries"; "Exits"; "Resident cycles"; "Mean residency";
              "Desched LL"; "Desched strand"; "Desched conflict" ]
      in
      List.iter
        (fun (label, (r : Sim.Perf.result)) ->
          let s = r.Sim.Perf.sched in
          Util.Table.add_row rt
            [
              label;
              string_of_int s.Sim.Perf.entries;
              string_of_int s.Sim.Perf.exits;
              string_of_int s.Sim.Perf.resident_cycles;
              Printf.sprintf "%.1f" (Sim.Perf.mean_residency s);
              string_of_int s.Sim.Perf.desched_long_latency;
              string_of_int s.Sim.Perf.desched_strand_boundary;
              string_of_int s.Sim.Perf.desched_bank_conflict;
            ])
        results;
      Util.Table.print rt;
      (* Top stalled warps of the recorded configuration. *)
      let tt =
        Util.Table.create
          ~title:(Printf.sprintf "Top %d stalled warps (%s)" top primary_label)
          ~columns:
            ([ "Warp"; "Stalled" ] @ List.map Obs.Timeline.state_name Obs.Timeline.all_states)
      in
      let ranked =
        List.sort
          (fun (a : Sim.Perf.warp_stats) (b : Sim.Perf.warp_stats) ->
            match
              compare
                (Sim.Perf.stalled_cycles b.Sim.Perf.breakdown)
                (Sim.Perf.stalled_cycles a.Sim.Perf.breakdown)
            with
            | 0 -> compare a.Sim.Perf.warp b.Sim.Perf.warp
            | c -> c)
          (Array.to_list primary_r.Sim.Perf.per_warp)
      in
      let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
      List.iter
        (fun (ws : Sim.Perf.warp_stats) ->
          Util.Table.add_row tt
            ([
               string_of_int ws.Sim.Perf.warp;
               string_of_int (Sim.Perf.stalled_cycles ws.Sim.Perf.breakdown);
             ]
            @ List.map
                (fun cause ->
                  string_of_int (Sim.Perf.breakdown_get ws.Sim.Perf.breakdown cause))
                Obs.Timeline.all_states))
        (take top ranked);
      Util.Table.print tt;
      (match trace_out with
       | None -> ()
       | Some path ->
         let spans = Obs.Span.spans () in
         let counters = Obs.Counters.tracks () in
         mkdirs (Filename.dirname path);
         (try
            Obs.Trace_export.write_file ~path ~process_name:"rfh timeline" ~counters
              ~timeline:ivs spans
          with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
         Printf.printf "trace: %d spans, %d counter tracks, %d timeline slices -> %s\n"
           (List.length spans) (List.length counters) (List.length ivs) path;
         Obs.Counters.set_enabled false;
         Obs.Span.set_enabled false);
      Option.iter
        (fun path ->
          let opts = opts_of ~warps ~seed ~benchmarks:[ bench ] ~jobs:1 in
          let m = Experiments.Run_manifest.collect opts in
          mkdirs (Filename.dirname path);
          (try Obs.Html_report.write_file ~path m
           with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
          Printf.printf "report -> %s\n" path)
        report_out;
      if !failures <> [] then begin
        prerr_endline "timeline: cross-checks FAILED:";
        List.iter (fun f -> prerr_endline ("  " ^ f)) (List.rev !failures);
        exit 1
      end
      else
        Printf.printf
          "timeline: all cross-checks passed (%d configs; breakdowns sum to cycles x %d \
           warps)\n"
          (List.length configs) warps
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(
      const run $ name_arg $ warps_arg $ seed_arg $ banks_arg $ top_arg $ jsonl_out_arg
      $ trace_out_arg $ report_out_arg)

(* ------------------------------------------------------------------ *)
(* engine: wall-clock profiling of the host engine itself — where does
   parallel wall x domains go, exactly?                                 *)

let engine_cmd =
  let doc =
    "Profile the host engine while regenerating one artefact (or $(b,all)) at each \
     requested $(b,--jobs) setting: speedup/efficiency per setting, plus an exact \
     decomposition of every parallel region's wall x domains budget into useful work, \
     spawn, teardown, lock wait, memo wait, dispatch and idle — the categories sum \
     exactly, and the command exits 1 if any accounting invariant fails or the rendered \
     tables differ across jobs settings.  $(b,--trace-out) writes a Perfetto trace with \
     per-domain task slices on a wall-clock process row; $(b,--json-out) writes the \
     engine reports as JSON; $(b,--report-out) writes a standalone HTML engine report."
  in
  let target_arg =
    Arg.(
      value
      & pos 0 string "fig13"
      & info [] ~docv:"TARGET" ~doc:"Artefact to regenerate (fig2..tables, or 'all').")
  in
  let jobs_list_arg =
    let doc = "Comma-separated worker-domain settings to profile, e.g. 1,2,4,8." in
    Arg.(value & opt (list int) [ 1; 2 ] & info [ "jobs"; "j" ] ~docv:"N,N,..." ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write a Chrome trace-event JSON file: phase spans (pid 1) plus per-domain engine \
       task/wait slices on their own wall-clock process row (pid 4), all against one \
       monotonic epoch."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let json_out_arg =
    let doc = "Write the engine reports (one per jobs setting) as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc)
  in
  let run target warps seed benchmarks jobs_list trace_out json_out report_out =
    let artefacts =
      if target = "all" then List.map snd Experiments.Report.artefact_names
      else
        match List.assoc_opt target Experiments.Report.artefact_names with
        | Some a -> [ a ]
        | None ->
          prerr_endline
            ("unknown target: " ^ target ^ " (expected 'all' or one of "
            ^ String.concat ", " (List.map fst Experiments.Report.artefact_names)
            ^ ")");
          exit 1
    in
    let jobs_list = List.sort_uniq compare (List.map (fun j -> max 1 j) jobs_list) in
    let jobs_list = if jobs_list = [] then [ 1 ] else jobs_list in
    if trace_out <> None then begin
      Obs.Span.reset ();
      Obs.Span.set_enabled true
    end;
    let failures = ref [] in
    let check what ok = if not ok then failures := what :: !failures in
    (* One profiled window per jobs setting.  Caches are cleared before
       every window so each run recomputes the same work from scratch —
       the walls are comparable and the memo tables show their real
       inter-domain behaviour instead of a warm cache. *)
    let runs =
      List.map
        (fun j ->
          Experiments.Report.clear_caches ();
          let opts = opts_of ~warps ~seed ~benchmarks ~jobs:j in
          let rendered, report =
            Obs.Engine.profile ~label:target ~jobs:j (fun () ->
                List.concat_map
                  (fun a -> List.map Util.Table.render (Experiments.Report.tables_of opts a))
                  artefacts)
          in
          (j, String.concat "\n" rendered, report))
        jobs_list
    in
    let reports = List.map (fun (_, _, r) -> r) runs in
    (* Result parity: the engine may only change how fast tables are
       produced, never their bytes. *)
    (match runs with
     | [] -> ()
     | (j0, out0, _) :: rest ->
       List.iter
         (fun (j, out, _) ->
           check (Printf.sprintf "rendered tables at jobs=%d byte-identical to jobs=%d" j j0)
             (String.equal out out0))
         rest);
    (* Accounting invariants: every category >= 0 and the seven sum to
       wall x domains in every region, lookups = hits+misses+waits per
       memo table, contended <= acquisitions per lock. *)
    List.iter
      (fun (r : Obs.Engine.report) ->
        List.iter
          (fun violation -> check (Printf.sprintf "jobs=%d: %s" r.Obs.Engine.jobs violation) false)
          (Obs.Engine.check r))
      reports;
    Util.Table.print (Obs.Engine.speedup_table reports);
    Util.Table.print (Obs.Engine.breakdown_table reports);
    List.iter (fun r -> Util.Table.print (Obs.Engine.region_table r)) reports;
    (match List.rev reports with
     | [] -> ()
     | widest :: _ ->
       Util.Table.print (Obs.Engine.memo_table widest);
       Util.Table.print (Obs.Engine.lock_table widest));
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        let j = Obs.Json.Arr (List.map Obs.Engine.to_json reports) in
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               Obs.Json.to_channel oc j;
               output_char oc '\n')
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "engine json: %d reports -> %s\n" (List.length reports) path)
      json_out;
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        (try Obs.Html_report.write_engine_page ~path reports
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "engine report -> %s\n" path)
      report_out;
    (match trace_out with
     | None -> ()
     | Some path ->
       let spans = Obs.Span.spans () in
       Obs.Span.set_enabled false;
       (* One shared zero point: engine epochs and span timestamps are
          the same CLOCK_MONOTONIC, so the earliest of either works for
          every row. *)
       let base_ns =
         List.fold_left
           (fun acc (r : Obs.Engine.report) -> min acc r.Obs.Engine.epoch_ns)
           (match spans with
            | [] -> (match reports with [] -> 0L | r :: _ -> r.Obs.Engine.epoch_ns)
            | _ -> Obs.Trace_export.earliest_span_ns spans)
           reports
       in
       let extra = List.concat_map (Obs.Engine.trace_events ~base_ns) reports in
       mkdirs (Filename.dirname path);
       (try
          Obs.Trace_export.write_file ~path ~process_name:"rfh engine" ~base_ns ~extra spans
        with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
       Printf.printf "trace: %d spans + %d engine rows -> %s\n" (List.length spans)
         (List.length extra) path);
    if !failures <> [] then begin
      prerr_endline "engine: self-checks FAILED:";
      List.iter (fun f -> prerr_endline ("  " ^ f)) (List.rev !failures);
      exit 1
    end
    else
      Printf.printf
        "engine: all self-checks passed (%d jobs settings; categories sum to wall x domains \
         in every region; rendered tables byte-identical)\n"
        (List.length jobs_list)
  in
  Cmd.v (Cmd.info "engine" ~doc)
    Term.(
      const run $ target_arg $ warps_arg $ seed_arg $ benchmarks_arg $ jobs_list_arg
      $ trace_out_arg $ json_out_arg $ report_out_arg)

(* ------------------------------------------------------------------ *)
(* gc: the GC view of the same profiled windows — how much of useful
   task time is the collector, what was allocated, how long pauses are. *)

let gc_cmd =
  let doc =
    "Profile the host runtime's GC while regenerating one artefact (or $(b,all)) at each \
     requested $(b,--jobs) setting: every Eprof region's useful time is split exactly into \
     compute + gc from Runtime_events pauses, with Gc.quick_stat allocation deltas per \
     region and a pause-duration histogram (p50/p99).  Exits 1 if any accounting \
     invariant fails or the rendered tables differ across jobs settings.  \
     $(b,--trace-out) writes a Perfetto trace with per-domain GC pause slices (pid 5) \
     next to the engine task slices (pid 4); $(b,--json-out) writes the reports (gc \
     capture included) as JSON; $(b,--report-out) writes the HTML engine+GC report."
  in
  let target_arg =
    Arg.(
      value
      & pos 0 string "fig13"
      & info [] ~docv:"TARGET" ~doc:"Artefact to regenerate (fig2..tables, or 'all').")
  in
  let jobs_list_arg =
    let doc = "Comma-separated worker-domain settings to profile, e.g. 1,2,4,8." in
    Arg.(value & opt (list int) [ 1; 2 ] & info [ "jobs"; "j" ] ~docv:"N,N,..." ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write a Chrome trace-event JSON file: phase spans (pid 1), per-domain engine \
       task/wait slices (pid 4) and per-domain GC pause slices (pid 5), all against one \
       monotonic epoch."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let json_out_arg =
    let doc =
      "Write the engine reports (one per jobs setting, gc capture included) as a JSON \
       array to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc)
  in
  let run target warps seed benchmarks jobs_list trace_out json_out report_out =
    let artefacts =
      if target = "all" then List.map snd Experiments.Report.artefact_names
      else
        match List.assoc_opt target Experiments.Report.artefact_names with
        | Some a -> [ a ]
        | None ->
          prerr_endline
            ("unknown target: " ^ target ^ " (expected 'all' or one of "
            ^ String.concat ", " (List.map fst Experiments.Report.artefact_names)
            ^ ")");
          exit 1
    in
    let jobs_list = List.sort_uniq compare (List.map (fun j -> max 1 j) jobs_list) in
    let jobs_list = if jobs_list = [] then [ 1 ] else jobs_list in
    if trace_out <> None then begin
      Obs.Span.reset ();
      Obs.Span.set_enabled true
    end;
    let failures = ref [] in
    let check what ok = if not ok then failures := what :: !failures in
    let runs =
      List.map
        (fun j ->
          Experiments.Report.clear_caches ();
          let opts = opts_of ~warps ~seed ~benchmarks ~jobs:j in
          let rendered, report =
            Obs.Engine.profile ~label:target ~jobs:j (fun () ->
                List.concat_map
                  (fun a -> List.map Util.Table.render (Experiments.Report.tables_of opts a))
                  artefacts)
          in
          (j, String.concat "\n" rendered, report))
        jobs_list
    in
    let reports = List.map (fun (_, _, r) -> r) runs in
    (match runs with
     | [] -> ()
     | (j0, out0, _) :: rest ->
       List.iter
         (fun (j, out, _) ->
           check (Printf.sprintf "rendered tables at jobs=%d byte-identical to jobs=%d" j j0)
             (String.equal out out0))
         rest);
    List.iter
      (fun (r : Obs.Engine.report) ->
        check (Printf.sprintf "jobs=%d: gc capture present" r.Obs.Engine.jobs)
          (r.Obs.Engine.gc <> None);
        List.iter
          (fun violation -> check (Printf.sprintf "jobs=%d: %s" r.Obs.Engine.jobs violation) false)
          (Obs.Engine.check r))
      reports;
    Util.Table.print (Obs.Engine.gc_summary_table reports);
    Util.Table.print (Obs.Engine.gc_mem_table reports);
    List.iter (fun r -> Util.Table.print (Obs.Engine.gc_region_table r)) reports;
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        let j = Obs.Json.Arr (List.map Obs.Engine.to_json reports) in
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               Obs.Json.to_channel oc j;
               output_char oc '\n')
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "gc json: %d reports -> %s\n" (List.length reports) path)
      json_out;
    Option.iter
      (fun path ->
        mkdirs (Filename.dirname path);
        (try Obs.Html_report.write_engine_page ~path reports
         with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
        Printf.printf "gc report -> %s\n" path)
      report_out;
    (match trace_out with
     | None -> ()
     | Some path ->
       let spans = Obs.Span.spans () in
       Obs.Span.set_enabled false;
       let base_ns =
         List.fold_left
           (fun acc (r : Obs.Engine.report) -> min acc r.Obs.Engine.epoch_ns)
           (match spans with
            | [] -> (match reports with [] -> 0L | r :: _ -> r.Obs.Engine.epoch_ns)
            | _ -> Obs.Trace_export.earliest_span_ns spans)
           reports
       in
       let extra =
         List.concat_map (Obs.Engine.trace_events ~base_ns) reports
         @ List.concat_map (Obs.Engine.gc_trace_events ~base_ns) reports
       in
       mkdirs (Filename.dirname path);
       (try Obs.Trace_export.write_file ~path ~process_name:"rfh gc" ~base_ns ~extra spans
        with Sys_error msg -> prerr_endline ("cannot write " ^ msg); exit 1);
       Printf.printf "trace: %d spans + %d engine/gc rows -> %s\n" (List.length spans)
         (List.length extra) path);
    if !failures <> [] then begin
      prerr_endline "gc: self-checks FAILED:";
      List.iter (fun f -> prerr_endline ("  " ^ f)) (List.rev !failures);
      exit 1
    end
    else
      Printf.printf
        "gc: all self-checks passed (%d jobs settings; 0 <= gc <= useful in every region; \
         rendered tables byte-identical)\n"
        (List.length jobs_list)
  in
  Cmd.v (Cmd.info "gc" ~doc)
    Term.(
      const run $ target_arg $ warps_arg $ seed_arg $ benchmarks_arg $ jobs_list_arg
      $ trace_out_arg $ json_out_arg $ report_out_arg)

let () =
  let doc = "compile-time managed multi-level register file hierarchy (MICRO 2011) reproduction" in
  let info = Cmd.info "rfh" ~version:"1.0.0" ~doc in
  let cmds =
    List.map artefact_cmd Experiments.Report.artefact_names
    @ [ all_cmd; kernels_cmd; allocate_cmd; compile_cmd; selfcheck_cmd; trace_cmd; profile_cmd;
        baseline_cmd; trend_cmd; why_cmd; explain_cmd; timeline_cmd; engine_cmd; gc_cmd ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
